"""The DGAP framework facade (paper §3).

One :class:`DGAP` instance owns:

* ① a DRAM **vertex array** (degree / start / edge-log pointer);
* ② a PM **edge array** — a VCSR-style packed memory array with pivot
  elements and insertion-ordered runs;
* ③ **per-section edge logs** absorbing would-be nearby shifts;
* ④ **per-thread undo logs** making rebalancing crash-consistent;

plus the PMA density tree, per-section locks, the pool root flags
(``NORMAL_SHUTDOWN``, edge-array generation) and the recovery logic.

Typical use::

    g = DGAP(DGAPConfig(init_vertices=1_000, init_edges=50_000))
    g.insert_edges(stream)              # (src, dst) pairs
    with g.consistent_view() as snap:   # Degree-Cache snapshot
        ranks = pagerank(snap)
    g.shutdown()                        # graceful: fast restart
    g2 = DGAP.open(g.pool, g.config)    # reload (or crash-recover)
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..config import DGAPConfig
from ..errors import GraphError, OutOfPMemError, VertexRangeError
from ..pmem.crash import CrashInjector
from ..pmem.faults import FaultPolicy
from ..pmem.pool import PMemPool
from ..pmem.tx import TransactionManager
from .batch import DEFAULT_BATCH_SIZE, EdgeBatch, EdgeLike
from .edge_array import EdgeArray
from .edge_log import EdgeLogs
from .encoding import MAX_VERTEX, SLOT_DTYPE, encode_edge, encode_pivot
from .locks import SectionLockTable
from ..obs.tracer import annotate, trace
from .pma_tree import DensityBounds
from ..nputil import multi_arange as _multi_arange
from .rebalance import (
    ROOT_EPS,
    ROOT_GEN,
    ROOT_INIT_CAP,
    ROOT_NTHREADS,
    ROOT_NV_HINT,
    ROOT_SEGSLOTS,
    ROOT_SHUTDOWN,
    Rebalancer,
)
from .snapshot import DGAPSnapshot
from .undo_log import UndoLog
from .vertex_array import make_vertex_array


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class DGAP:
    """Dynamic Graph Analysis framework on (simulated) Persistent memory."""

    #: processed per-edge order of the last vectorized batch (positions
    #: into the batch) — replaying it one edge at a time reproduces the
    #: exact same persistent state and PM counters (equivalence tests).
    last_batch_order: Optional[np.ndarray] = None
    _merge_thr_cache: Optional[tuple] = None

    def __init__(
        self,
        config: Optional[DGAPConfig] = None,
        pool: Optional[PMemPool] = None,
        injector: Optional[CrashInjector] = None,
        faults: Optional["FaultPolicy"] = None,
    ):
        self.config = config or DGAPConfig()
        cfg = self.config
        capacity = self._initial_capacity(cfg)
        if pool is None:
            pool = PMemPool(
                cfg.pool_bytes or self._auto_pool_bytes(cfg, capacity),
                profile=cfg.profile,
                name="dgap",
                injector=injector,
                faults=faults,
            )
        self.pool = pool
        self._bounds = DensityBounds(cfg.tau_leaf, cfg.tau_root, cfg.rho_leaf, cfg.rho_root)

        self.ea = EdgeArray(
            pool, capacity, cfg.segment_slots, self._bounds,
            gen=0, create=True, pm_metadata=not cfg.dram_placement,
        )
        self.logs = EdgeLogs(pool, self.ea.n_sections, cfg.elog_entries, gen=0)
        self.ulogs = [UndoLog(pool, t, cfg.ulog_size) for t in range(cfg.writer_threads)]
        self.tx_mgr: Optional[TransactionManager] = None
        if not cfg.use_undo_log:
            self._make_tx_mgr(capacity)
        self.va = make_vertex_array(cfg.init_vertices, cfg.dram_placement, pool)
        self.locks = SectionLockTable(self.ea.n_sections)
        self.rebalancer = Rebalancer(self)

        # operation counters (DRAM, informational)
        self.n_edges_inserted = 0
        self.n_log_inserts = 0
        self.n_array_inserts = 0
        self.n_shift_inserts = 0
        self.n_rebalances = 0
        self.n_resizes = 0
        self.n_compactions = 0
        self.tombstone_pairs_compacted = 0
        self.slots_rebalanced = 0
        self._active_snapshots = 0

        self._cow_cache = None
        #: rebalance windows of the current op (consumed by the virtual-
        #: thread scheduler when track_rebalance_windows is set)
        self.track_rebalance_windows = False
        self.op_rebalance_windows: list = []
        self._seed_pivots()
        if cfg.cow_degree_cache:
            self._init_cow_cache()
        self._init_view_tracking()
        self._write_geometry_roots()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _initial_capacity(cfg: DGAPConfig) -> int:
        need = int((cfg.init_edges + cfg.init_vertices) * cfg.overprovision)
        n_seg = _next_pow2(max(1, (need + cfg.segment_slots - 1) // cfg.segment_slots))
        return n_seg * cfg.segment_slots

    @staticmethod
    def _auto_pool_bytes(cfg: DGAPConfig, capacity: int) -> int:
        # Headroom for several copy-on-write resize generations, the
        # per-section edge logs of each, scratch areas and the undo logs.
        slot_bytes = capacity * 4
        elog_bytes = (capacity // cfg.segment_slots) * cfg.elog_size
        per_gen = slot_bytes * 3 + elog_bytes * 2
        return max(1 << 20, per_gen * 16 + cfg.writer_threads * (cfg.ulog_size + 4096) + (1 << 20))

    def _make_tx_mgr(self, capacity: int) -> None:
        name = f"pmdk-journal.g{self.ea.gen if hasattr(self, 'ea') else 0}"
        self.tx_mgr = TransactionManager(self.pool, capacity=capacity * 4 + 64 * 1024, name=name)

    def _seed_pivots(self) -> None:
        """Place every initial vertex's pivot, evenly spaced (paper §3 ②)."""
        nv = self.va.num_vertices
        cap = self.ea.capacity
        if nv > cap:
            raise GraphError("init_vertices exceeds edge-array capacity")
        image = np.zeros(cap, dtype=SLOT_DTYPE)
        ids = np.arange(nv, dtype=np.int64)
        pos = ids * cap // nv
        image[pos] = -(ids + 1)
        self.pool.device.ntstore(self.ea.region.offset, image.view(np.uint8), payload=0)
        self.pool.device.sfence()
        starts = pos + 1
        zeros = np.zeros(nv, dtype=np.int64)
        self.va.bulk_load(starts, zeros, zeros.copy(), zeros.copy(), np.full(nv, -1, np.int64))
        self.ea.recount_all()

    def _write_geometry_roots(self) -> None:
        p = self.pool
        p.write_root(ROOT_GEN, 0)
        p.write_root(ROOT_SEGSLOTS, self.config.segment_slots)
        p.write_root(ROOT_INIT_CAP, self.ea.capacity)
        p.write_root(ROOT_EPS, self.config.elog_entries)
        p.write_root(ROOT_NTHREADS, self.config.writer_threads)
        p.write_root(ROOT_NV_HINT, self.va.num_vertices)
        p.write_root(ROOT_SHUTDOWN, 0)

    def _init_cow_cache(self) -> None:
        from .degree_cache import CoWDegreeCache

        self._cow_cache = CoWDegreeCache(self.va.degrees(), self.va.live_degrees())

    def _sync_degree(self, v: int) -> None:
        """Mirror one vertex's degree into the CoW Degree Cache."""
        if self._cow_cache is not None:
            if v >= self._cow_cache.num_vertices:
                self._cow_cache.grow(self.va.num_vertices)
            self._cow_cache.set(v, int(self.va.degree[v]), int(self.va.live_degree[v]))

    # ------------------------------------------------------------------
    # structure epochs (incremental analysis views)
    # ------------------------------------------------------------------
    def _init_view_tracking(self) -> None:
        """Reset the structure epoch and per-section dirty stamps.

        ``structure_epoch`` is a monotone counter bumped on every
        structural mutation; ``_section_epoch[s]`` records the epoch
        that last touched section ``s``.  A view cache materialized at
        epoch ``e`` finds its dirty sections as ``_section_epoch > e``
        — stamp-based, so there is no clearing step and any number of
        caches (and a reopened graph) stay correct independently.
        """
        self.structure_epoch = 0
        self._section_epoch = np.zeros(self.ea.n_sections, dtype=np.int64)
        #: epoch-keyed snapshot serving point reads (`out_neighbors`):
        #: re-taken only when the structure epoch moves, so a read burst
        #: between writes pays one snapshot, not one per call.
        self._point_snap: Optional[DGAPSnapshot] = None
        self._point_snap_epoch = -1

    def _touch_sections(self, sections) -> None:
        """Stamp ``sections`` (index, slice or array) with a fresh epoch."""
        self.structure_epoch += 1
        self._section_epoch[sections] = self.structure_epoch

    def _touch_slot_range(self, lo_slot: int, hi_slot: int) -> None:
        """Stamp every section overlapping slots ``[lo_slot, hi_slot)``."""
        S = self.ea.segment_slots
        self._touch_sections(slice(int(lo_slot) // S, (int(hi_slot) + S - 1) // S))

    def sections_dirty_since(self, epoch: int) -> np.ndarray:
        """Boolean mask of sections mutated after ``epoch``."""
        return self._section_epoch > epoch

    # ------------------------------------------------------------------
    # rebalancer callbacks
    # ------------------------------------------------------------------
    def stats_note_rebalance(self, slots: int) -> None:
        self.n_rebalances += 1
        self.slots_rebalanced += slots

    def note_rebalance_window(self, lo_slot: int, hi_slot: int) -> None:
        self._touch_slot_range(lo_slot, hi_slot)
        if getattr(self, "track_rebalance_windows", False):
            self.op_rebalance_windows.append((lo_slot, hi_slot))

    def stats_note_resize(self, new_capacity: int) -> None:
        self.n_resizes += 1
        self.locks.resize(self.ea.n_sections)
        # New generation: every run may have moved — stamp everything.
        self.structure_epoch += 1
        self._section_epoch = np.full(
            self.ea.n_sections, self.structure_epoch, dtype=np.int64
        )
        if self.tx_mgr is not None:
            self._make_tx_mgr(new_capacity)

    # ------------------------------------------------------------------
    # graph updates (paper §3.1.2)
    # ------------------------------------------------------------------
    def insert_vertex(self, v: int) -> None:
        """Ensure vertex ids ``0..v`` exist (``g.insertV``)."""
        if v > MAX_VERTEX:
            raise VertexRangeError(f"vertex {v} exceeds encodable maximum {MAX_VERTEX}")
        va = self.va
        if va.num_vertices > v:
            return
        with trace("insert_vertex", v=v):
            self._insert_vertex_traced(v)

    def _insert_vertex_traced(self, v: int) -> None:
        va = self.va
        locked = self.config.thread_safe
        while va.num_vertices <= v:
            u = va.num_vertices
            last = u - 1
            pos = int(va.start[last] + va.array_degree[last])
            held = None
            if locked:
                # Tail pivot write: exclusive with appends to the last run.
                held = self.locks.acquire_many(
                    {
                        self.ea.section_of(int(va.start[last]) - 1),
                        self.ea.section_of(min(pos, self.ea.capacity - 1)),
                    }
                )
                stale = (
                    va.num_vertices != u
                    or int(va.start[last] + va.array_degree[last]) != pos
                )
                if stale:
                    self.locks.release_many(held)
                    continue
            try:
                if pos >= self.ea.capacity:
                    if held is not None:
                        self.locks.release_many(held)
                        held = None
                    self.rebalancer.resize()
                    continue
                if self.ea.slots[pos] != 0:
                    raise GraphError("tail slot unexpectedly occupied")
                self.ea.write_slot(pos, encode_pivot(u), payload=4, persist=True)
                va.grow(u + 1)
                va.set_start(u, pos + 1)
                va.set_el(u, -1)
                self._sync_degree(u)
                self.ea.inc_occ(self.ea.section_of(pos))
                self._touch_slot_range(pos, pos + 1)
                self.pool.write_root(ROOT_NV_HINT, va.num_vertices)
            finally:
                if held is not None:
                    self.locks.release_many(held)

    def insert_edge(
        self,
        src: int,
        dst: int,
        thread_id: int = 0,
        tombstone: bool = False,
        grow_vertices: bool = True,
    ) -> None:
        """Insert directed edge ``src -> dst`` (``g.insertE``).

        A thin one-element batch: semantically ``insert_edges`` of a
        single edge, kept on the scalar path so crash-injection sweeps
        hit every individual store/flush/fence boundary.  Deletion
        re-inserts the edge with the tombstone flag set
        (:meth:`delete_edge`).  The PM write is persisted *before* the
        DRAM vertex array is touched, so a crash in between is always
        recoverable from the persistent state.

        With ``grow_vertices=False`` the source must already exist and
        the destination is stored as an opaque id without materializing
        a vertex for it — the sharding layer owns only ``src``'s shard
        and keeps destinations in the *global* id space
        (:mod:`repro.sharding`).
        """
        nv = self.va.num_vertices
        if grow_vertices:
            if src >= nv or dst >= nv:
                self.insert_vertex(max(src, dst))
        elif src >= nv:
            raise VertexRangeError(
                f"source {src} >= {nv} with vertex growth disabled"
            )
        self._insert_one(int(src), int(dst), thread_id, tombstone)

    # -- §3.1.6 lock sets ------------------------------------------------
    #
    # A writer locks the *pivot* section of its source vertex (edge-log
    # appends land there) plus the section of the append position — run
    # tails cross section boundaries, and a rebalance window can only be
    # exclusive if the writer holds the section it actually stores into.
    # Lock sets are recomputed and re-validated after acquisition: the
    # run may have moved (rebalance) or the whole geometry changed
    # (resize) while the writer waited.  Rebalances and resizes are
    # *deferred* out of the locked region (`_insert_edge_inner` returns
    # a pending action instead of calling the rebalancer): acquiring a
    # multi-section window while already holding a mid-window section is
    # the out-of-order acquisition the lock-discipline oracle rejects,
    # and two writers doing it concurrently deadlock.

    def _insert_lock_set(self, src: int) -> set:
        start = int(self.va.start[src])
        pos = start + int(self.va.array_degree[src])
        secs = {self.ea.section_of(start - 1)}
        if pos < self.ea.capacity:
            secs.add(self.ea.section_of(pos))
        return secs

    def _shift_lock_set(self, src: int) -> set:
        """Sections a nearby shift may rewrite: run head to the first gap."""
        va, ea = self.va, self.ea
        start = int(va.start[src])
        pos = start + int(va.array_degree[src])
        lo_sec = ea.section_of(start - 1)
        if pos >= ea.capacity:
            return {lo_sec}
        free = np.flatnonzero(ea.slots[pos:] == 0)
        g = pos + int(free[0]) if free.size else ea.capacity
        return set(range(lo_sec, ea.section_of(min(g, ea.capacity - 1)) + 1))

    def _acquire_validated(self, src: int, lock_set_fn) -> list:
        """Acquire ``lock_set_fn(src)`` and re-validate it under the locks."""
        while True:
            held = self.locks.acquire_many(lock_set_fn(src))
            if set(lock_set_fn(src)) <= set(held):
                return held
            self.locks.release_many(held)

    def _insert_one(self, src: int, dst: int, thread_id: int, tombstone: bool) -> None:
        """One-edge insert for an existing vertex (lock + inner path).

        Rebalance work triggered by the insert (section merge, density
        rebalance, resize) runs *after* the writer's section locks are
        released; the rebalancer then takes its own window locks via
        ``begin_rebalance``.  With ``thread_safe=False`` the deferral is
        pure control flow — the persistence-event order is identical to
        the historical inline calls, which the crash sweeps pin down.
        """
        with trace("insert_edge"):
            self._insert_one_traced(src, dst, thread_id, tombstone)

    def _insert_one_traced(self, src: int, dst: int, thread_id: int, tombstone: bool) -> None:
        locked = self.config.thread_safe
        stage = "inner"
        while True:
            held = None
            if locked:
                held = self._acquire_validated(
                    src, self._insert_lock_set if stage == "inner" else self._shift_lock_set
                )
            try:
                if stage == "inner":
                    pending = self._insert_edge_inner(src, dst, thread_id, tombstone)
                else:  # stage == "shift": retry the nearby shift after a resize
                    pending = self._insert_with_shift(
                        src, encode_edge(dst, tombstone), -1 if tombstone else 1, thread_id
                    )
            finally:
                if held is not None:
                    self.locks.release_many(held)
            if pending is None:
                return
            kind = pending[0]
            if kind == "merge":  # insert landed; log crossed the merge point
                self.rebalancer.merge_section(pending[1], thread_id)
                return
            if kind == "merge_retry":  # log full; merge, then redo the insert
                self.rebalancer.merge_section(pending[1], thread_id)
                stage = "inner"
                continue
            if kind == "resize_shift":  # shift found no gap; resize, redo shift
                self.rebalancer.resize(thread_id)
                stage = "shift"
                continue
            if kind == "do_shift":  # No-EL ablation: shift needs its own lock set
                stage = "shift"
                continue
            if kind == "rebalance":  # shift landed; density check is due
                self.rebalancer.maybe_rebalance(pending[1], thread_id)
                return
            raise GraphError(f"unknown deferred insert action {pending!r}")

    def _insert_edge_inner(self, src: int, dst: int, thread_id: int, tombstone: bool):
        va, ea, logs, cfg = self.va, self.ea, self.logs, self.config
        enc = encode_edge(dst, tombstone)
        pos = int(va.start[src] + va.array_degree[src])
        live_delta = -1 if tombstone else 1

        if pos < ea.capacity and ea.slots[pos] == 0:
            # Fast path: the slot after the run is a gap — atomic insert.
            ea.write_slot(pos, enc, payload=4, persist=True)
            va.set_array_degree(src, int(va.array_degree[src]) + 1)
            va.set_degree(src, int(va.degree[src]) + 1)
            va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
            ea.inc_occ(ea.section_of(pos))
            self._sync_degree(src)
            self.n_array_inserts += 1
            self.n_edges_inserted += 1
            self._touch_slot_range(pos, pos + 1)
            # No density check here: a gap insert cannot overflow anything.
            # Rebalancing is driven by the edge logs (merge at 90%/full) and
            # by capacity (resize) — see §3 ③: "rebalancing might be
            # triggered if either the edge array or edge log is approaching
            # full capacity".
            return

        if not cfg.use_edge_log:
            # Ablation "No EL": the naive mutable-CSR nearby shift.  Hand
            # control back to `_insert_one` so the shift runs under its
            # (wider) lock set rather than the pivot/append pair.
            if cfg.thread_safe:
                return ("do_shift",)
            return self._insert_with_shift(src, enc, live_delta, thread_id)

        sec = ea.section_of(int(va.start[src]) - 1)
        if logs.counts[sec] >= logs.capacity:
            # Log completely full (merge threshold was deferred): force a
            # merge (deferred past lock release), then redo the insert.
            return ("merge_retry", sec)
        gidx = logs.append(sec, src, int(enc), int(va.el[src]))
        va.set_el(src, gidx)
        va.set_degree(src, int(va.degree[src]) + 1)
        va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
        self._sync_degree(src)
        self.n_log_inserts += 1
        self.n_edges_inserted += 1
        self._touch_sections(sec)
        if logs.fill_fraction(sec) >= cfg.elog_merge_fraction:
            return ("merge", sec)
        return None

    def _insert_with_shift(self, src: int, enc: int, live_delta: int, thread_id: int):
        """Naive PMA insert: shift the occupied range right to open a gap.

        This is the write-amplification path of Fig. 1(a) — every
        element between the insertion point and the next gap is
        rewritten and persisted.  Protected by the undo log (or a PMDK
        transaction under "No EL&UL").  Returns a deferred action for
        `_insert_one` (resize wanted, or a post-shift density check).
        """
        va, ea = self.va, self.ea
        pos = int(va.start[src] + va.array_degree[src])
        if pos >= ea.capacity:
            return ("resize_shift",)
        slots = ea.slots
        # find the first gap at or after pos
        g = pos
        cap = ea.capacity
        while g < cap and slots[g] != 0:
            g += 1
        if g >= cap:
            return ("resize_shift",)

        dev = self.pool.device
        nbytes = (g - pos + 1) * 4
        if self.config.use_undo_log and nbytes <= self.ulogs[thread_id].capacity:
            # Common case: the paper's fused backup-then-shift protocol.
            ulog = self.ulogs[thread_id]
            ulog.snapshot_window(pos, g + 1, ea.byte_off(pos), nbytes)
            self._do_shift(pos, g, enc)
            # Nothing was merged: finishing directly is safe — a crash
            # before it restores the backup (the unacknowledged insert
            # simply never happened) and re-issues a window rebalance.
            ulog.finish()
        else:
            # Long shift (dense run longer than ULOG_SZ) or the PMDK-TX
            # ablation: write the shifted image through the protected
            # window writer.  Edge logs are unused in "No EL" mode, so
            # the copyback DONE protocol's log cleanup is a no-op.
            image = np.empty(g - pos + 1, dtype=SLOT_DTYPE)
            image[0] = enc
            image[1:] = ea.slots[pos:g]
            self.rebalancer.write_window_protected(pos, g + 1, image, thread_id)
            if self.config.use_undo_log:
                ulog = self.ulogs[thread_id]
                ulog.mark_done(pos, pos)
                ulog.finish()

        # DRAM metadata: shifted runs (pivots in (pos, g]) moved right by one.
        starts = va.starts()
        pivots = starts - 1
        lo_i = int(np.searchsorted(pivots, pos, side="left"))
        hi_i = int(np.searchsorted(pivots, g + 1, side="left"))
        for u in range(lo_i, hi_i):
            va.set_start(u, int(va.start[u]) + 1)
        va.set_array_degree(src, int(va.array_degree[src]) + 1)
        va.set_degree(src, int(va.degree[src]) + 1)
        va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
        self._sync_degree(src)
        ea.recount(pos, g + 1)
        self._touch_slot_range(pos, g + 1)
        self.n_shift_inserts += 1
        self.n_edges_inserted += 1
        return ("rebalance", ea.section_of(pos))

    def _do_shift(self, pos: int, gap: int, enc: int) -> None:
        """Move ``slots[pos:gap]`` one to the right and write ``enc`` at ``pos``."""
        ea = self.ea
        dev = self.pool.device
        if gap > pos:
            moved = ea.slots[pos:gap].copy()
            dev.store(ea.byte_off(pos + 1), moved.view(np.uint8), payload=0)
        dev.store(ea.byte_off(pos), np.asarray(enc, dtype=SLOT_DTYPE).tobytes(), payload=4)
        dev.persist(ea.byte_off(pos), (gap - pos + 1) * 4)

    def insert_edges(
        self,
        edges: EdgeLike,
        thread_id: int = 0,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        grow_vertices: bool = True,
    ) -> int:
        """Bulk insert — the primary mutation entry point (paper §3.1.2).

        Accepts an :class:`EdgeBatch`, an ``(N, 2)`` array or any
        ``(src, dst)`` iterable; returns the number of accepted edges
        (tombstones included).  The batch is grouped by PMA section and
        applied with span stores/flushes: per round, every source's
        trailing gap run is filled with one scattered
        :meth:`~repro.pmem.device.PMemDevice.persist_batch`, then each
        touched section's remaining edges are appended to its edge log
        as one contiguous span.  The resulting persistent state and PM
        counters are identical to inserting the edges one at a time in
        :attr:`last_batch_order`.  ``batch_size`` splits the stream into
        consecutive sub-batches (default 512; None or <= 0 = one
        unbounded batch).
        """
        batch = EdgeBatch.coerce(edges)
        with trace("insert_edges", edges=len(batch)):
            if batch_size is not None and batch_size > 0 and len(batch) > batch_size:
                return sum(
                    self._insert_batch(c, thread_id, grow_vertices)
                    for c in batch.chunks(batch_size)
                )
            return self._insert_batch(batch, thread_id, grow_vertices)

    def _insert_batch(
        self, batch: EdgeBatch, thread_id: int = 0, grow_vertices: bool = True
    ) -> int:
        n = len(batch)
        if n == 0:
            self.last_batch_order = np.empty(0, dtype=np.int64)
            return 0
        if n == 1:
            s, d = int(batch.src[0]), int(batch.dst[0])
            if grow_vertices:
                if max(s, d) >= self.va.num_vertices:
                    self.insert_vertex(max(s, d))
            elif s >= self.va.num_vertices:
                raise VertexRangeError(
                    f"source {s} >= {self.va.num_vertices} with vertex growth disabled"
                )
            self._insert_one(s, d, thread_id, bool(batch.tombstone[0]))
            self.last_batch_order = np.zeros(1, dtype=np.int64)
            return 1
        if grow_vertices:
            mx = batch.max_vertex()
            if mx >= self.va.num_vertices:
                self.insert_vertex(mx)
        elif int(batch.src.max()) >= self.va.num_vertices:
            raise VertexRangeError(
                f"source {int(batch.src.max())} >= {self.va.num_vertices} "
                f"with vertex growth disabled"
            )
        cfg = self.config
        if not cfg.use_edge_log or not cfg.dram_placement:
            # Ablation modes interleave per-edge PM metadata writes
            # (shift path / PM-resident placement); keep the scalar order.
            src, dst, tomb = batch.src, batch.dst, batch.tombstone
            for i in range(n):
                self._insert_one(int(src[i]), int(dst[i]), thread_id, bool(tomb[i]))
            self.last_batch_order = np.arange(n, dtype=np.int64)
            return n
        return self._insert_batch_vectorized(batch, thread_id)

    def _merge_threshold(self) -> int:
        """Smallest entry count whose fill fraction reaches the merge point."""
        cap = self.logs.capacity
        frac = self.config.elog_merge_fraction
        key = (cap, frac)
        if self._merge_thr_cache is not None and self._merge_thr_cache[0] == key:
            return self._merge_thr_cache[1]
        c = max(1, int(np.ceil(frac * cap)))
        while c > 1 and (c - 1) / cap >= frac:
            c -= 1
        while c / cap < frac:
            c += 1
        self._merge_thr_cache = (key, c)
        return c

    def _insert_batch_vectorized(self, batch: EdgeBatch, thread_id: int) -> int:
        srcs = batch.src
        encs = batch.encoded()
        live = batch.live_deltas()
        order_parts: list = []
        pending = np.arange(len(batch), dtype=np.int64)
        while pending.size:
            pending = self._batch_round(pending, srcs, encs, live, order_parts, thread_id)
        self.last_batch_order = (
            np.concatenate(order_parts) if order_parts else np.empty(0, dtype=np.int64)
        )
        return len(batch)

    def _batch_round(
        self,
        pending: np.ndarray,
        srcs: np.ndarray,
        encs: np.ndarray,
        live: np.ndarray,
        order_parts: list,
        thread_id: int,
    ) -> np.ndarray:
        """One grouped pass over ``pending``; returns the deferred rest.

        Edges are processed section-by-section, source-by-source: first
        every source's gap run is extended (fast path, one scattered
        span persist), then each section's overflow goes to its edge log
        (one contiguous span persist per section).  A section merge or a
        resize relocates runs, so the rest of the round is deferred and
        regrouped against the new geometry — exactly what the scalar
        path's retry does.
        """
        with trace("batch_round", edges=int(pending.size)):
            return self._batch_round_traced(
                pending, srcs, encs, live, order_parts, thread_id
            )

    def _batch_round_traced(
        self,
        pending: np.ndarray,
        srcs: np.ndarray,
        encs: np.ndarray,
        live: np.ndarray,
        order_parts: list,
        thread_id: int,
    ) -> np.ndarray:
        va, cfg = self.va, self.config
        S = self.ea.segment_slots
        while True:
            ea, logs = self.ea, self.logs
            psrc = srcs[pending]
            sec_keys = (va.start[psrc] - 1) // S
            order = np.lexsort((psrc, sec_keys))
            p = pending[order]
            o_src = psrc[order]
            m = int(p.size)

            # distinct-source subgroups (contiguous; sections contiguous too)
            change = np.empty(m, dtype=bool)
            change[0] = True
            np.not_equal(o_src[1:], o_src[:-1], out=change[1:])
            gstart = np.flatnonzero(change)
            gcount = np.diff(np.append(gstart, m))
            gsrc = o_src[gstart]
            gsec = sec_keys[order][gstart]

            held: list = []
            if not cfg.thread_safe:
                break
            # Lock every section a group may store into: its pivot section
            # through the section of its worst-case trailing-gap fill (the
            # fast phase writes at most `gcount` slots past the run end).
            need: set = set()
            wpos = va.start[gsrc] + va.array_degree[gsrc]
            wend = np.minimum(wpos + gcount, ea.capacity) - 1
            for a, b in zip(gsec.tolist(), (np.maximum(wend, 0) // S).tolist()):
                need.update(range(int(a), min(int(b), ea.n_sections - 1) + 1))
            held = self.locks.acquire_many(need)
            stale = (
                self.ea is not ea
                or not np.array_equal((va.start[psrc] - 1) // S, sec_keys)
                or not np.array_equal(va.start[gsrc] + va.array_degree[gsrc], wpos)
            )
            if not stale:
                break
            # A rebalance/resize moved runs while we waited: regroup.
            self.locks.release_many(held)
        try:
            # ---- fast phase: fill trailing gap runs ----------------------
            cap = ea.capacity
            gpos = va.start[gsrc] + va.array_degree[gsrc]
            kclip = np.minimum(gcount, np.clip(cap - gpos, 0, None))
            nfree = kclip.copy()
            cand = _multi_arange(gpos, kclip)
            if cand.size:
                occ_mask = ea.slots[cand] != 0
                if occ_mask.any():
                    # first occupied candidate per subgroup caps its run
                    seg_id = np.repeat(np.arange(gsrc.size), kclip)
                    local = cand - np.repeat(gpos, kclip)
                    hit = np.flatnonzero(occ_mask)
                    first_block = np.full(gsrc.size, np.int64(1) << 60)
                    np.minimum.at(first_block, seg_id[hit], local[hit])
                    nfree = np.minimum(kclip, first_block)
            n_fast = int(nfree.sum())
            if n_fast:
                fast_slots = _multi_arange(gpos, nfree)
                fast_p = p[_multi_arange(gstart, nfree)]
                # Emit the span in original stream-position order: the
                # device sees the same scattered store/flush sequence a
                # per-edge stream would, so modeled flush classification
                # (sequential/random/in-place) matches the scalar path.
                perm = np.argsort(fast_p, kind="stable")
                ea.write_slots(fast_slots[perm], encs[fast_p[perm]])
                ea.inc_occ_counts(
                    np.bincount(fast_slots // S, minlength=ea.n_sections)
                )
                ends = np.cumsum(nfree)
                lcum = np.concatenate(([0], np.cumsum(live[fast_p])))
                va.bulk_apply_inserts(gsrc, nfree, nfree, lcum[ends] - lcum[ends - nfree])
                self.n_array_inserts += n_fast
                self.n_edges_inserted += n_fast
                self._touch_sections(np.unique(fast_slots // S))
                order_parts.append(fast_p[perm])
                # As in the scalar path, gap inserts trigger no density
                # check — rebalancing is driven by the edge logs.

            # ---- log phase: one scattered span append over all sections --
            rem = gcount - nfree
            deferred_parts: list = []
            if rem.any():
                c_thr = self._merge_threshold()
                tails = _multi_arange(gstart + nfree, rem)
                # Emission again follows original stream positions, so
                # appends from different sections interleave exactly as a
                # per-edge stream would hit the device.
                pos_order = np.argsort(p[tails], kind="stable")
                ti = tails[pos_order]
                sp = p[ti]
                ssrc = o_src[ti]
                ssec = np.repeat(gsec, rem)[pos_order]
                k = int(sp.size)
                usecs, inv = np.unique(ssec, return_inverse=True)
                counts_s = logs.counts[usecs]
                t_total = np.bincount(inv, minlength=usecs.size)
                force = counts_s >= logs.capacity
                take_s = np.minimum(t_total, np.maximum(1, c_thr - counts_s))
                merges = force | (counts_s + take_s >= c_thr)
                # per-section append rank of every unit, in position order
                so = np.argsort(inv, kind="stable")
                sec0 = np.concatenate(([0], np.cumsum(t_total)))[:-1]
                rank = np.empty(k, dtype=np.int64)
                rank[so] = np.arange(k, dtype=np.int64) - np.repeat(sec0, t_total)
                taken_mask = rank < take_s[inv]
                # A merge relocates runs, so everything after the first
                # merge trigger is deferred and regrouped next round (the
                # scalar path's retry).  A normal trigger is the append
                # that crosses the merge threshold (scalar merges right
                # after it); a full log (force) merges *before* its unit.
                cut_i, cut_sec, cut_force = k, -1, False
                if merges.any():
                    far = np.int64(1) << 62
                    trig_n = np.flatnonzero(
                        (merges & ~force)[inv] & (rank == take_s[inv] - 1)
                    )
                    trig_f = np.flatnonzero(force[inv] & (rank == 0))
                    best_n = int(trig_n[0]) if trig_n.size else far
                    best_f = int(trig_f[0]) if trig_f.size else far
                    if best_f < best_n:
                        cut_i, cut_sec, cut_force = best_f, int(ssec[best_f]), True
                    elif best_n < far:
                        cut_i, cut_sec, cut_force = best_n, int(ssec[best_n]), False
                if cut_i < k:
                    idx = np.arange(k)
                    kept = taken_mask & (idx < cut_i if cut_force else idx <= cut_i)
                else:
                    kept = taken_mask
                if not kept.all():
                    deferred_parts.append(sp[~kept])

                ki = np.flatnonzero(kept)
                n_log = int(ki.size)
                if n_log:
                    kp = sp[ki]
                    ks = ssrc[ki]
                    kg = (
                        usecs[inv[ki]] * logs.entries_per_section
                        + counts_s[inv[ki]]
                        + rank[ki]
                    )
                    # back-pointer chains per source, in emission order
                    cho = np.argsort(ks, kind="stable")
                    cs = ks[cho]
                    cg = kg[cho]
                    ch = np.empty(n_log, dtype=bool)
                    ch[0] = True
                    np.not_equal(cs[1:], cs[:-1], out=ch[1:])
                    backs_s = np.empty(n_log, dtype=np.int64)
                    backs_s[1:] = cg[:-1]
                    backs_s[ch] = va.el[cs[ch]]
                    backs = np.empty(n_log, dtype=np.int64)
                    backs[cho] = backs_s
                    logs.append_scatter(kg, ks, encs[kp], backs)
                    nexts = np.flatnonzero(ch[1:])
                    last = np.append(nexts, n_log - 1)
                    va.bulk_set_el(cs[last], cg[last])
                    cnt_starts = np.flatnonzero(ch)
                    cnt_ends = np.append(nexts + 1, n_log)
                    lcum = np.concatenate(([0], np.cumsum(live[kp[cho]])))
                    va.bulk_apply_inserts(
                        cs[cnt_starts],
                        cnt_ends - cnt_starts,
                        0,
                        lcum[cnt_ends] - lcum[cnt_starts],
                    )
                    self.n_log_inserts += n_log
                    self.n_edges_inserted += n_log
                    self._touch_sections(np.unique(usecs[inv[ki]]))
                    order_parts.append(kp)

        finally:
            self.locks.release_many(held)

        if rem.any() and cut_sec >= 0:
            # Deferred past the release: a merge takes window locks of its
            # own, and taking them while holding writer locks is the
            # out-of-order acquisition the lock discipline forbids.
            self.rebalancer.merge_section(cut_sec, thread_id)

        if self._cow_cache is not None:
            for v in gsrc.tolist():
                self._sync_degree(int(v))
        return (
            np.concatenate(deferred_parts)
            if deferred_parts
            else np.empty(0, dtype=np.int64)
        )

    def delete_edge(self, src: int, dst: int, thread_id: int = 0) -> None:
        """Delete one occurrence of ``src -> dst`` (tombstone insertion, §3.1.2)."""
        self.insert_edge(src, dst, thread_id=thread_id, tombstone=True)

    # ------------------------------------------------------------------
    # tombstone compaction (temporal expiry sweep)
    # ------------------------------------------------------------------
    def tombstone_density(self) -> float:
        """Fraction of logical edge entries that are tombstones (0 if empty).

        ``degree`` counts every entry (lives and tombstones), and
        ``live_degree`` counts lives minus tombstones, so the tombstone
        count is ``(Σdegree − Σlive) / 2`` — a pure DRAM read, cheap
        enough to poll after every expiry batch.
        """
        deg = int(self.va.degrees().sum())
        if deg == 0:
            return 0.0
        live = int(self.va.live_degrees().sum())
        return (deg - live) / (2 * deg)

    def compact(self, thread_id: int = 0) -> dict:
        """Tombstone-merge sweep: physically drop matched delete pairs.

        Rewrites the whole edge array once (under the rebalance crash
        protocol), removing every matched tombstone + cancelled-live
        pair from each vertex's logical run and merging pending edge-log
        chains in the same pass.  The live adjacency read back afterward
        is byte-identical; only the dead weight that inflates section
        occupancy, gathers and recovery scans is gone.  Unmatched
        tombstones are kept (see ``rebalance._compact_keep_mask``).

        Requires no active analysis snapshots: snapshot semantics give a
        reader the first ``degree_v`` *logical* entries of each run, and
        the sweep rewrites exactly that history.
        """
        self._drop_point_view()
        if self._active_snapshots:
            raise GraphError("compact with active analysis snapshots")
        with trace("compact"):
            stats = self.rebalancer.compact(thread_id)
            annotate(**stats)
        self.n_compactions += 1
        self.tombstone_pairs_compacted += stats["pairs_dropped"]
        if self._cow_cache is not None:
            for v in range(self.va.num_vertices):
                self._sync_degree(v)
        return stats

    # ------------------------------------------------------------------
    # graph analysis (paper §3.1.3)
    # ------------------------------------------------------------------
    def consistent_view(self) -> DGAPSnapshot:
        """Snapshot the Degree Cache for an analysis task (``g.consistent_view``)."""
        return DGAPSnapshot(self)

    def _snapshot_opened(self, snap) -> None:
        self._active_snapshots += 1

    def _snapshot_closed(self, snap) -> None:
        self._active_snapshots -= 1

    @property
    def num_vertices(self) -> int:
        return self.va.num_vertices

    @property
    def num_edges(self) -> int:
        """Live (tombstone-adjusted) edge count."""
        return int(self.va.live_degrees().sum())

    def out_degree(self, v: int) -> int:
        self.va.check(v)
        return int(self.va.live_degree[v])

    def point_view(self) -> DGAPSnapshot:
        """Epoch-keyed snapshot for point reads.

        Every structural mutation bumps ``structure_epoch``, so a
        snapshot taken at the current epoch stays exact until the next
        write — point reads between writes share one cached snapshot
        instead of paying a fresh Degree-Cache copy (and
        ``_active_snapshots`` churn) per call.  The cached snapshot is
        owned by the graph: callers must not ``release()`` it (it is
        dropped automatically on the next epoch change or shutdown).
        """
        snap = self._point_snap
        if (
            snap is None
            or snap._released
            or self._point_snap_epoch != self.structure_epoch
        ):
            self._drop_point_view()
            snap = self.consistent_view()
            self._point_snap = snap
            self._point_snap_epoch = self.structure_epoch
        return snap

    def _drop_point_view(self) -> None:
        if self._point_snap is not None:
            if not self._point_snap._released:
                self._point_snap.release()
            self._point_snap = None
            self._point_snap_epoch = -1

    def out_neighbors(self, v: int) -> np.ndarray:
        """Current live neighbors of ``v`` (point read, cached per epoch)."""
        self.va.check(v)
        return self.point_view().out_neighbors(v)

    # ------------------------------------------------------------------
    # shutdown / reopen (paper §3.1.5)
    # ------------------------------------------------------------------
    _META_FIELDS = ("start", "degree", "array_degree", "live_degree", "el")

    def shutdown(self) -> None:
        """Graceful shutdown: persist DRAM components, set NORMAL_SHUTDOWN."""
        self._drop_point_view()
        if self._active_snapshots:
            raise GraphError("shutdown with active analysis snapshots")
        with trace("shutdown"):
            self._shutdown_traced()

    def _shutdown_traced(self) -> None:
        nv = self.va.num_vertices
        for f in self._META_FIELDS:
            name = f"meta.{f}"
            if self.pool.has_array(name):
                self.pool.drop_array(name)
            region = self.pool.alloc_array(name, np.int64, nv)
            region.nt_write_slice(0, getattr(self.va, f)[:nv])
        self.pool.device.sfence()
        self.pool.write_root(ROOT_NV_HINT, nv)
        self.pool.device.drain_all()
        self.pool.write_root(ROOT_SHUTDOWN, 1)

    @classmethod
    def open(cls, pool: PMemPool, config: Optional[DGAPConfig] = None) -> "DGAP":
        """Reopen a DGAP from its pool: fast path after a graceful
        shutdown, full recovery (§3.1.5) after a crash."""
        from .recovery import open_from_pool

        return open_from_pool(cls, pool, config)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the PMA structural invariants; raises ``GraphError``.

        Checked: pivot ids dense and strictly increasing; every run
        contiguous (no embedded gaps) and gap-terminated; DRAM occupancy
        bookkeeping consistent with the persistent array; per-vertex
        degree = array part + live edge-log chain.  Used by tests and
        available to applications after recovery.
        """
        slots = self.ea.slots
        ppos = np.flatnonzero(slots < 0)
        vids = -slots[ppos].astype(np.int64) - 1
        nv = self.va.num_vertices
        if vids.size != nv or not np.array_equal(vids, np.arange(nv)):
            raise GraphError("pivot id space is not dense/ordered")
        if not np.array_equal(ppos + 1, self.va.starts()):
            raise GraphError("DRAM starts disagree with pivots")
        ends = np.append(ppos[1:], self.ea.capacity)
        for v in range(nv):
            st = int(self.va.start[v])
            ad = int(self.va.array_degree[v])
            if st + ad > int(ends[v]):
                raise GraphError(f"run of vertex {v} overlaps its successor")
            if not (slots[st : st + ad] > 0).all():
                raise GraphError(f"run of vertex {v} has embedded gaps")
            if not (slots[st + ad : int(ends[v])] == 0).all():
                raise GraphError(f"trailing region of vertex {v} is not gaps")
            el = int(self.va.el[v])
            chain_len = self.logs.walk_chain_arrays(el)[0].size if el >= 0 else 0
            if ad + chain_len != int(self.va.degree[v]):
                raise GraphError(f"degree bookkeeping of vertex {v} inconsistent")
        occ = self.ea.seg_occ.copy()
        self.ea.recount_all()
        if not np.array_equal(occ, self.ea.seg_occ):
            raise GraphError("section occupancy bookkeeping stale")

    # Placeholder populated by recovery (bypasses __init__).
    @classmethod
    def _blank(cls) -> "DGAP":
        return cls.__new__(cls)


__all__ = ["DGAP"]
