"""The DGAP framework facade (paper §3).

One :class:`DGAP` instance owns:

* ① a DRAM **vertex array** (degree / start / edge-log pointer);
* ② a PM **edge array** — a VCSR-style packed memory array with pivot
  elements and insertion-ordered runs;
* ③ **per-section edge logs** absorbing would-be nearby shifts;
* ④ **per-thread undo logs** making rebalancing crash-consistent;

plus the PMA density tree, per-section locks, the pool root flags
(``NORMAL_SHUTDOWN``, edge-array generation) and the recovery logic.

Typical use::

    g = DGAP(DGAPConfig(init_vertices=1_000, init_edges=50_000))
    g.insert_edges(stream)              # (src, dst) pairs
    with g.consistent_view() as snap:   # Degree-Cache snapshot
        ranks = pagerank(snap)
    g.shutdown()                        # graceful: fast restart
    g2 = DGAP.open(g.pool, g.config)    # reload (or crash-recover)
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..config import DGAPConfig
from ..errors import GraphError, OutOfPMemError, VertexRangeError
from ..pmem.crash import CrashInjector
from ..pmem.pool import PMemPool
from ..pmem.tx import TransactionManager
from .edge_array import EdgeArray
from .edge_log import EdgeLogs
from .encoding import MAX_VERTEX, SLOT_DTYPE, encode_edge, encode_pivot
from .locks import SectionLockTable
from .pma_tree import DensityBounds
from .rebalance import (
    ROOT_EPS,
    ROOT_GEN,
    ROOT_INIT_CAP,
    ROOT_NTHREADS,
    ROOT_NV_HINT,
    ROOT_SEGSLOTS,
    ROOT_SHUTDOWN,
    Rebalancer,
)
from .snapshot import DGAPSnapshot
from .undo_log import UndoLog
from .vertex_array import make_vertex_array


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class DGAP:
    """Dynamic Graph Analysis framework on (simulated) Persistent memory."""

    def __init__(
        self,
        config: Optional[DGAPConfig] = None,
        pool: Optional[PMemPool] = None,
        injector: Optional[CrashInjector] = None,
    ):
        self.config = config or DGAPConfig()
        cfg = self.config
        capacity = self._initial_capacity(cfg)
        if pool is None:
            pool = PMemPool(
                cfg.pool_bytes or self._auto_pool_bytes(cfg, capacity),
                profile=cfg.profile,
                name="dgap",
                injector=injector,
            )
        self.pool = pool
        self._bounds = DensityBounds(cfg.tau_leaf, cfg.tau_root, cfg.rho_leaf, cfg.rho_root)

        self.ea = EdgeArray(
            pool, capacity, cfg.segment_slots, self._bounds,
            gen=0, create=True, pm_metadata=not cfg.dram_placement,
        )
        self.logs = EdgeLogs(pool, self.ea.n_sections, cfg.elog_entries, gen=0)
        self.ulogs = [UndoLog(pool, t, cfg.ulog_size) for t in range(cfg.writer_threads)]
        self.tx_mgr: Optional[TransactionManager] = None
        if not cfg.use_undo_log:
            self._make_tx_mgr(capacity)
        self.va = make_vertex_array(cfg.init_vertices, cfg.dram_placement, pool)
        self.locks = SectionLockTable(self.ea.n_sections)
        self.rebalancer = Rebalancer(self)

        # operation counters (DRAM, informational)
        self.n_edges_inserted = 0
        self.n_log_inserts = 0
        self.n_array_inserts = 0
        self.n_shift_inserts = 0
        self.n_rebalances = 0
        self.n_resizes = 0
        self.slots_rebalanced = 0
        self._active_snapshots = 0

        self._cow_cache = None
        #: rebalance windows of the current op (consumed by the virtual-
        #: thread scheduler when track_rebalance_windows is set)
        self.track_rebalance_windows = False
        self.op_rebalance_windows: list = []
        self._seed_pivots()
        if cfg.cow_degree_cache:
            self._init_cow_cache()
        self._write_geometry_roots()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _initial_capacity(cfg: DGAPConfig) -> int:
        need = int((cfg.init_edges + cfg.init_vertices) * cfg.overprovision)
        n_seg = _next_pow2(max(1, (need + cfg.segment_slots - 1) // cfg.segment_slots))
        return n_seg * cfg.segment_slots

    @staticmethod
    def _auto_pool_bytes(cfg: DGAPConfig, capacity: int) -> int:
        # Headroom for several copy-on-write resize generations, the
        # per-section edge logs of each, scratch areas and the undo logs.
        slot_bytes = capacity * 4
        elog_bytes = (capacity // cfg.segment_slots) * cfg.elog_size
        per_gen = slot_bytes * 3 + elog_bytes * 2
        return max(1 << 20, per_gen * 16 + cfg.writer_threads * (cfg.ulog_size + 4096) + (1 << 20))

    def _make_tx_mgr(self, capacity: int) -> None:
        name = f"pmdk-journal.g{self.ea.gen if hasattr(self, 'ea') else 0}"
        self.tx_mgr = TransactionManager(self.pool, capacity=capacity * 4 + 64 * 1024, name=name)

    def _seed_pivots(self) -> None:
        """Place every initial vertex's pivot, evenly spaced (paper §3 ②)."""
        nv = self.va.num_vertices
        cap = self.ea.capacity
        if nv > cap:
            raise GraphError("init_vertices exceeds edge-array capacity")
        image = np.zeros(cap, dtype=SLOT_DTYPE)
        ids = np.arange(nv, dtype=np.int64)
        pos = ids * cap // nv
        image[pos] = -(ids + 1)
        self.pool.device.ntstore(self.ea.region.offset, image.view(np.uint8), payload=0)
        self.pool.device.sfence()
        starts = pos + 1
        zeros = np.zeros(nv, dtype=np.int64)
        self.va.bulk_load(starts, zeros, zeros.copy(), zeros.copy(), np.full(nv, -1, np.int64))
        self.ea.recount_all()

    def _write_geometry_roots(self) -> None:
        p = self.pool
        p.write_root(ROOT_GEN, 0)
        p.write_root(ROOT_SEGSLOTS, self.config.segment_slots)
        p.write_root(ROOT_INIT_CAP, self.ea.capacity)
        p.write_root(ROOT_EPS, self.config.elog_entries)
        p.write_root(ROOT_NTHREADS, self.config.writer_threads)
        p.write_root(ROOT_NV_HINT, self.va.num_vertices)
        p.write_root(ROOT_SHUTDOWN, 0)

    def _init_cow_cache(self) -> None:
        from .degree_cache import CoWDegreeCache

        self._cow_cache = CoWDegreeCache(self.va.degrees(), self.va.live_degrees())

    def _sync_degree(self, v: int) -> None:
        """Mirror one vertex's degree into the CoW Degree Cache."""
        if self._cow_cache is not None:
            if v >= self._cow_cache.num_vertices:
                self._cow_cache.grow(self.va.num_vertices)
            self._cow_cache.set(v, int(self.va.degree[v]), int(self.va.live_degree[v]))

    # ------------------------------------------------------------------
    # rebalancer callbacks
    # ------------------------------------------------------------------
    def stats_note_rebalance(self, slots: int) -> None:
        self.n_rebalances += 1
        self.slots_rebalanced += slots

    def note_rebalance_window(self, lo_slot: int, hi_slot: int) -> None:
        if self.track_rebalance_windows:
            self.op_rebalance_windows.append((lo_slot, hi_slot))

    def stats_note_resize(self, new_capacity: int) -> None:
        self.n_resizes += 1
        self.locks.resize(self.ea.n_sections)
        if self.tx_mgr is not None:
            self._make_tx_mgr(new_capacity)

    # ------------------------------------------------------------------
    # graph updates (paper §3.1.2)
    # ------------------------------------------------------------------
    def insert_vertex(self, v: int) -> None:
        """Ensure vertex ids ``0..v`` exist (``g.insertV``)."""
        if v > MAX_VERTEX:
            raise VertexRangeError(f"vertex {v} exceeds encodable maximum {MAX_VERTEX}")
        va = self.va
        while va.num_vertices <= v:
            u = va.num_vertices
            last = u - 1
            pos = int(va.start[last] + va.array_degree[last])
            if pos >= self.ea.capacity:
                self.rebalancer.resize()
                continue
            if self.ea.slots[pos] != 0:
                raise GraphError("tail slot unexpectedly occupied")
            self.ea.write_slot(pos, encode_pivot(u), payload=4, persist=True)
            va.grow(u + 1)
            va.set_start(u, pos + 1)
            va.set_el(u, -1)
            self._sync_degree(u)
            self.ea.inc_occ(self.ea.section_of(pos))
            self.pool.write_root(ROOT_NV_HINT, va.num_vertices)

    def insert_edge(self, src: int, dst: int, thread_id: int = 0, tombstone: bool = False) -> None:
        """Insert directed edge ``src -> dst`` (``g.insertE``).

        Deletion re-inserts the edge with the tombstone flag set
        (:meth:`delete_edge`).  The PM write is persisted *before* the
        DRAM vertex array is touched, so a crash in between is always
        recoverable from the persistent state.
        """
        va = self.va
        nv = va.num_vertices
        if src >= nv or dst >= nv:
            self.insert_vertex(max(src, dst))
        cfg = self.config
        locked = cfg.thread_safe
        st = int(va.start[src])
        sec_pivot = self.ea.section_of(st - 1)
        if locked:
            self.locks.acquire(sec_pivot)
        try:
            self._insert_edge_inner(src, dst, thread_id, tombstone)
        finally:
            if locked:
                self.locks.release(sec_pivot)

    def _insert_edge_inner(self, src: int, dst: int, thread_id: int, tombstone: bool) -> None:
        va, ea, logs, cfg = self.va, self.ea, self.logs, self.config
        enc = encode_edge(dst, tombstone)
        pos = int(va.start[src] + va.array_degree[src])
        live_delta = -1 if tombstone else 1

        if pos < ea.capacity and ea.slots[pos] == 0:
            # Fast path: the slot after the run is a gap — atomic insert.
            ea.write_slot(pos, enc, payload=4, persist=True)
            va.set_array_degree(src, int(va.array_degree[src]) + 1)
            va.set_degree(src, int(va.degree[src]) + 1)
            va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
            ea.inc_occ(ea.section_of(pos))
            self._sync_degree(src)
            self.n_array_inserts += 1
            self.n_edges_inserted += 1
            # No density check here: a gap insert cannot overflow anything.
            # Rebalancing is driven by the edge logs (merge at 90%/full) and
            # by capacity (resize) — see §3 ③: "rebalancing might be
            # triggered if either the edge array or edge log is approaching
            # full capacity".
            return

        if not cfg.use_edge_log:
            # Ablation "No EL": the naive mutable-CSR nearby shift.
            self._insert_with_shift(src, enc, live_delta, thread_id)
            return

        sec = ea.section_of(int(va.start[src]) - 1)
        if logs.counts[sec] >= logs.capacity:
            # Log completely full (merge threshold was deferred): force a merge.
            self.rebalancer.merge_section(sec, thread_id)
            self._insert_edge_inner(src, dst, thread_id, tombstone)
            return
        gidx = logs.append(sec, src, int(enc), int(va.el[src]))
        va.set_el(src, gidx)
        va.set_degree(src, int(va.degree[src]) + 1)
        va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
        self._sync_degree(src)
        self.n_log_inserts += 1
        self.n_edges_inserted += 1
        if logs.fill_fraction(sec) >= cfg.elog_merge_fraction:
            self.rebalancer.merge_section(sec, thread_id)

    def _insert_with_shift(self, src: int, enc: int, live_delta: int, thread_id: int) -> None:
        """Naive PMA insert: shift the occupied range right to open a gap.

        This is the write-amplification path of Fig. 1(a) — every
        element between the insertion point and the next gap is
        rewritten and persisted.  Protected by the undo log (or a PMDK
        transaction under "No EL&UL").
        """
        va, ea = self.va, self.ea
        pos = int(va.start[src] + va.array_degree[src])
        if pos >= ea.capacity:
            self.rebalancer.resize(thread_id)
            return self._insert_with_shift(src, enc, live_delta, thread_id)
        slots = ea.slots
        # find the first gap at or after pos
        g = pos
        cap = ea.capacity
        while g < cap and slots[g] != 0:
            g += 1
        if g >= cap:
            self.rebalancer.resize(thread_id)
            return self._insert_with_shift(src, enc, live_delta, thread_id)

        dev = self.pool.device
        nbytes = (g - pos + 1) * 4
        if self.config.use_undo_log and nbytes <= self.ulogs[thread_id].capacity:
            # Common case: the paper's fused backup-then-shift protocol.
            ulog = self.ulogs[thread_id]
            ulog.snapshot_window(pos, g + 1, ea.byte_off(pos), nbytes)
            self._do_shift(pos, g, enc)
            # Nothing was merged: finishing directly is safe — a crash
            # before it restores the backup (the unacknowledged insert
            # simply never happened) and re-issues a window rebalance.
            ulog.finish()
        else:
            # Long shift (dense run longer than ULOG_SZ) or the PMDK-TX
            # ablation: write the shifted image through the protected
            # window writer.  Edge logs are unused in "No EL" mode, so
            # the copyback DONE protocol's log cleanup is a no-op.
            image = np.empty(g - pos + 1, dtype=SLOT_DTYPE)
            image[0] = enc
            image[1:] = ea.slots[pos:g]
            self.rebalancer.write_window_protected(pos, g + 1, image, thread_id)
            if self.config.use_undo_log:
                ulog = self.ulogs[thread_id]
                ulog.mark_done(pos, pos)
                ulog.finish()

        # DRAM metadata: shifted runs (pivots in (pos, g]) moved right by one.
        starts = va.starts()
        pivots = starts - 1
        lo_i = int(np.searchsorted(pivots, pos, side="left"))
        hi_i = int(np.searchsorted(pivots, g + 1, side="left"))
        for u in range(lo_i, hi_i):
            va.set_start(u, int(va.start[u]) + 1)
        va.set_array_degree(src, int(va.array_degree[src]) + 1)
        va.set_degree(src, int(va.degree[src]) + 1)
        va.set_live_degree(src, int(va.live_degree[src]) + live_delta)
        self._sync_degree(src)
        ea.recount(pos, g + 1)
        self.n_shift_inserts += 1
        self.n_edges_inserted += 1
        self.rebalancer.maybe_rebalance(ea.section_of(pos), thread_id)

    def _do_shift(self, pos: int, gap: int, enc: int) -> None:
        """Move ``slots[pos:gap]`` one to the right and write ``enc`` at ``pos``."""
        ea = self.ea
        dev = self.pool.device
        if gap > pos:
            moved = ea.slots[pos:gap].copy()
            dev.store(ea.byte_off(pos + 1), moved.view(np.uint8), payload=0)
        dev.store(ea.byte_off(pos), np.asarray(enc, dtype=SLOT_DTYPE).tobytes(), payload=4)
        dev.persist(ea.byte_off(pos), (gap - pos + 1) * 4)

    def insert_edges(
        self, edges: Iterable[Tuple[int, int]], thread_id: int = 0
    ) -> int:
        """Bulk insert; returns the number of edges inserted."""
        n = 0
        for s, d in edges:
            self.insert_edge(int(s), int(d), thread_id=thread_id)
            n += 1
        return n

    def delete_edge(self, src: int, dst: int, thread_id: int = 0) -> None:
        """Delete one occurrence of ``src -> dst`` (tombstone insertion, §3.1.2)."""
        self.insert_edge(src, dst, thread_id=thread_id, tombstone=True)

    # ------------------------------------------------------------------
    # graph analysis (paper §3.1.3)
    # ------------------------------------------------------------------
    def consistent_view(self) -> DGAPSnapshot:
        """Snapshot the Degree Cache for an analysis task (``g.consistent_view``)."""
        return DGAPSnapshot(self)

    def _snapshot_opened(self, snap) -> None:
        self._active_snapshots += 1

    def _snapshot_closed(self, snap) -> None:
        self._active_snapshots -= 1

    @property
    def num_vertices(self) -> int:
        return self.va.num_vertices

    @property
    def num_edges(self) -> int:
        """Live (tombstone-adjusted) edge count."""
        return int(self.va.live_degrees().sum())

    def out_degree(self, v: int) -> int:
        self.va.check(v)
        return int(self.va.live_degree[v])

    def out_neighbors(self, v: int) -> np.ndarray:
        """Current live neighbors of ``v`` (unsnapshotted convenience read)."""
        with self.consistent_view() as snap:
            return snap.out_neighbors(v)

    # ------------------------------------------------------------------
    # shutdown / reopen (paper §3.1.5)
    # ------------------------------------------------------------------
    _META_FIELDS = ("start", "degree", "array_degree", "live_degree", "el")

    def shutdown(self) -> None:
        """Graceful shutdown: persist DRAM components, set NORMAL_SHUTDOWN."""
        if self._active_snapshots:
            raise GraphError("shutdown with active analysis snapshots")
        nv = self.va.num_vertices
        for f in self._META_FIELDS:
            name = f"meta.{f}"
            if self.pool.has_array(name):
                self.pool.drop_array(name)
            region = self.pool.alloc_array(name, np.int64, nv)
            region.nt_write_slice(0, getattr(self.va, f)[:nv])
        self.pool.device.sfence()
        self.pool.write_root(ROOT_NV_HINT, nv)
        self.pool.device.drain_all()
        self.pool.write_root(ROOT_SHUTDOWN, 1)

    @classmethod
    def open(cls, pool: PMemPool, config: Optional[DGAPConfig] = None) -> "DGAP":
        """Reopen a DGAP from its pool: fast path after a graceful
        shutdown, full recovery (§3.1.5) after a crash."""
        from .recovery import open_from_pool

        return open_from_pool(cls, pool, config)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the PMA structural invariants; raises ``GraphError``.

        Checked: pivot ids dense and strictly increasing; every run
        contiguous (no embedded gaps) and gap-terminated; DRAM occupancy
        bookkeeping consistent with the persistent array; per-vertex
        degree = array part + live edge-log chain.  Used by tests and
        available to applications after recovery.
        """
        slots = self.ea.slots
        ppos = np.flatnonzero(slots < 0)
        vids = -slots[ppos].astype(np.int64) - 1
        nv = self.va.num_vertices
        if vids.size != nv or not np.array_equal(vids, np.arange(nv)):
            raise GraphError("pivot id space is not dense/ordered")
        if not np.array_equal(ppos + 1, self.va.starts()):
            raise GraphError("DRAM starts disagree with pivots")
        ends = np.append(ppos[1:], self.ea.capacity)
        for v in range(nv):
            st = int(self.va.start[v])
            ad = int(self.va.array_degree[v])
            if st + ad > int(ends[v]):
                raise GraphError(f"run of vertex {v} overlaps its successor")
            if not (slots[st : st + ad] > 0).all():
                raise GraphError(f"run of vertex {v} has embedded gaps")
            if not (slots[st + ad : int(ends[v])] == 0).all():
                raise GraphError(f"trailing region of vertex {v} is not gaps")
            el = int(self.va.el[v])
            chain_len = len(self.logs.walk_chain(el)) if el >= 0 else 0
            if ad + chain_len != int(self.va.degree[v]):
                raise GraphError(f"degree bookkeeping of vertex {v} inconsistent")
        occ = self.ea.seg_occ.copy()
        self.ea.recount_all()
        if not np.array_equal(occ, self.ea.seg_occ):
            raise GraphError("section occupancy bookkeeping stale")

    # Placeholder populated by recovery (bypasses __init__).
    @classmethod
    def _blank(cls) -> "DGAP":
        return cls.__new__(cls)


__all__ = ["DGAP"]
