"""Copy-on-Write Degree Cache (the paper's §6 future work, implemented).

The baseline Degree Cache copies the whole degree vector per analysis
task — O(|V|) DRAM per task even though "many of the degrees are the
same and do not need to be stored in each task" (§3 ②).  The paper's
planned improvement is a CoW cache where tasks and the main vertex
array share unchanged degrees.

Design: the degree (and live-degree) vectors are divided into
fixed-size *chunks*.  The writer maintains a current chunk table; a
snapshot grabs the table (O(|V|/chunk) references) and pins the chunk
versions.  Before the writer's first modification of a chunk that any
live snapshot pins, the chunk is copied (copy-on-write) — so a snapshot
costs O(1) per chunk plus one chunk copy per chunk *actually modified*
during its lifetime, instead of O(|V|) up front.

``CoWDegreeCache`` wraps both vectors; ``DGAPConfig.cow_degree_cache``
switches `consistent_view()` over to it.  The sharing is observable:
:attr:`chunks_copied` counts real copies, and the property tests verify
snapshots stay consistent through arbitrary writer activity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

DEFAULT_CHUNK = 1024


class _ChunkedVector:
    """One CoW-chunked int64 vector."""

    __slots__ = ("chunk", "chunks", "shared", "n")

    def __init__(self, values: np.ndarray, chunk: int):
        self.chunk = chunk
        self.n = values.size
        self.chunks: List[np.ndarray] = [
            values[i : i + chunk].copy() for i in range(0, self.n, chunk)
        ]
        #: True while a live snapshot may still reference the chunk; a
        #: copy-on-write clears it until the next snapshot pins again.
        self.shared = [False] * len(self.chunks)

    def grow(self, new_n: int, fill: int = 0) -> None:
        if new_n <= self.n:
            return
        # top up the last partial chunk, then append fresh chunks
        last = self.chunks[-1] if self.chunks else np.empty(0, np.int64)
        total = np.concatenate(
            [last, np.full(new_n - self.n + (self.chunk - last.size) % self.chunk, fill, np.int64)]
        )
        if self.chunks:
            self.chunks[-1] = total[: self.chunk]
            rest = total[self.chunk :]
        else:
            rest = total
        for i in range(0, rest.size, self.chunk):
            self.chunks.append(rest[i : i + self.chunk].copy())
            self.shared.append(False)
        self.n = new_n


class DegreeSnapshot:
    """A task's pinned view of the degree vectors at time t."""

    __slots__ = ("cache", "deg_refs", "live_refs", "n", "_released")

    def __init__(self, cache: "CoWDegreeCache"):
        self.cache = cache
        self.deg_refs = list(cache._deg.chunks)  # references, not copies
        self.live_refs = list(cache._live.chunks)
        self.n = cache._deg.n
        self._released = False
        cache._pins += 1
        # every current chunk is now pinned by this snapshot
        cache._deg.shared = [True] * len(cache._deg.chunks)
        cache._live.shared = [True] * len(cache._live.chunks)

    # -- reads -----------------------------------------------------------
    def degree(self, v: int) -> int:
        return int(self.deg_refs[v // self.cache.chunk][v % self.cache.chunk])

    def live_degree(self, v: int) -> int:
        return int(self.live_refs[v // self.cache.chunk][v % self.cache.chunk])

    def degrees(self) -> np.ndarray:
        return np.concatenate(self.deg_refs)[: self.n] if self.deg_refs else np.empty(0, np.int64)

    def live_degrees(self) -> np.ndarray:
        return np.concatenate(self.live_refs)[: self.n] if self.live_refs else np.empty(0, np.int64)

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.cache._pins -= 1

    @property
    def shared_chunks(self) -> int:
        """How many chunks are still shared with the live writer state."""
        live = self.cache._deg.chunks
        return sum(
            1 for i, ref in enumerate(self.deg_refs) if i < len(live) and ref is live[i]
        )


class CoWDegreeCache:
    """Writer-side chunked degree vectors with snapshot sharing."""

    def __init__(self, degrees: np.ndarray, live_degrees: np.ndarray, chunk: int = DEFAULT_CHUNK):
        self.chunk = chunk
        self._deg = _ChunkedVector(np.asarray(degrees, np.int64), chunk)
        self._live = _ChunkedVector(np.asarray(live_degrees, np.int64), chunk)
        self._pins = 0
        self.chunks_copied = 0

    # -- writer API --------------------------------------------------------
    def _writable(self, vec: _ChunkedVector, ci: int) -> np.ndarray:
        """Chunk `ci`, copied first iff a snapshot still references it."""
        if vec.shared[ci] and self._pins > 0:
            vec.chunks[ci] = vec.chunks[ci].copy()
            vec.shared[ci] = False
            self.chunks_copied += 1
        return vec.chunks[ci]

    def set(self, v: int, degree: int, live: int) -> None:
        ci, off = divmod(v, self.chunk)
        self._writable(self._deg, ci)[off] = degree
        self._writable(self._live, ci)[off] = live

    def bulk_set(self, i0: int, degrees: np.ndarray, lives: np.ndarray) -> None:
        for k in range(degrees.size):
            self.set(i0 + k, int(degrees[k]), int(lives[k]))

    def grow(self, new_n: int) -> None:
        self._deg.grow(new_n)
        self._live.grow(new_n)

    # -- reads / snapshots ------------------------------------------------------
    def degree(self, v: int) -> int:
        return int(self._deg.chunks[v // self.chunk][v % self.chunk])

    def live_degree(self, v: int) -> int:
        return int(self._live.chunks[v // self.chunk][v % self.chunk])

    def snapshot(self) -> DegreeSnapshot:
        """O(chunks) — the CoW win over the O(|V|) copying Degree Cache."""
        return DegreeSnapshot(self)

    @property
    def num_vertices(self) -> int:
        return self._deg.n


__all__ = ["CoWDegreeCache", "DegreeSnapshot", "DEFAULT_CHUNK"]
