"""DGAP vertex array (paper §3 ①).

Per vertex the paper stores *degree*, *starting index in the edge
array* and an *edge-log pointer*; we additionally keep ``array_degree``
(how many of the vertex's edge slots physically live in the edge array
vs. its edge-log chain) and ``live_degree`` (degree minus tombstones)
— both derivable from persistent state, kept for O(1) access.

Placement is the paper's headline design decision: these fields are
updated on *every* edge insertion, so DGAP keeps them **in DRAM** and
reconstructs them from the pivots after a crash.  The Table 5 ablation
("No ...&DP") moves them to persistent memory instead, where every
update becomes a persistent in-place cache-line flush; both backends
implement the same interface so the rest of the core is oblivious.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import VertexRangeError
from ..pmem.pool import PMemPool

#: el_ptr value meaning "no edge-log entries for this vertex".
NO_EL = -1


class VertexArray:
    """DRAM-resident vertex metadata (the default, fast path)."""

    is_dram = True

    def __init__(self, num_vertices: int):
        cap = max(16, num_vertices)
        self._cap = cap
        self.num_vertices = num_vertices
        self.degree = np.zeros(cap, dtype=np.int64)
        self.array_degree = np.zeros(cap, dtype=np.int64)
        self.live_degree = np.zeros(cap, dtype=np.int64)
        self.start = np.zeros(cap, dtype=np.int64)
        self.el = np.full(cap, NO_EL, dtype=np.int64)

    # -- bulk views (valid slices over the active prefix) -------------------
    def starts(self) -> np.ndarray:
        return self.start[: self.num_vertices]

    def degrees(self) -> np.ndarray:
        return self.degree[: self.num_vertices]

    def array_degrees(self) -> np.ndarray:
        return self.array_degree[: self.num_vertices]

    def live_degrees(self) -> np.ndarray:
        return self.live_degree[: self.num_vertices]

    def els(self) -> np.ndarray:
        return self.el[: self.num_vertices]

    # -- element updates ------------------------------------------------------
    def check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise VertexRangeError(f"vertex {v} out of range [0, {self.num_vertices})")

    def set_start(self, v: int, value: int) -> None:
        self.start[v] = value

    def set_degree(self, v: int, value: int) -> None:
        self.degree[v] = value

    def set_array_degree(self, v: int, value: int) -> None:
        self.array_degree[v] = value

    def set_live_degree(self, v: int, value: int) -> None:
        self.live_degree[v] = value

    def set_el(self, v: int, value: int) -> None:
        self.el[v] = value

    def bulk_apply_inserts(self, vs, d_degree, d_array_degree, d_live) -> None:
        """Vectorized insert bookkeeping: add per-vertex deltas.

        ``vs`` holds distinct vertex ids; each delta is an array aligned
        with ``vs`` (or a scalar).
        """
        self.degree[vs] += d_degree
        self.array_degree[vs] += d_array_degree
        self.live_degree[vs] += d_live

    def bulk_set_el(self, vs, values) -> None:
        """Set the edge-log chain head of several distinct vertices."""
        self.el[vs] = values

    def bulk_load(
        self,
        start: np.ndarray,
        degree: np.ndarray,
        array_degree: np.ndarray,
        live_degree: np.ndarray,
        el: np.ndarray,
    ) -> None:
        n = self.num_vertices
        self.start[:n] = start
        self.degree[:n] = degree
        self.array_degree[:n] = array_degree
        self.live_degree[:n] = live_degree
        self.el[:n] = el

    def update_window(
        self,
        i0: int,
        j: int,
        start: np.ndarray,
        degree: np.ndarray,
        array_degree: np.ndarray,
        live_degree: np.ndarray,
        el: np.ndarray,
    ) -> None:
        """Bulk metadata update for vertices ``[i0, j)`` after a rebalance."""
        self.start[i0:j] = start
        self.degree[i0:j] = degree
        self.array_degree[i0:j] = array_degree
        self.live_degree[i0:j] = live_degree
        self.el[i0:j] = el

    # -- growth -----------------------------------------------------------------
    def grow(self, new_num_vertices: int) -> None:
        """Extend the id space (amortized-doubling DRAM reallocation)."""
        if new_num_vertices <= self.num_vertices:
            return
        if new_num_vertices > self._cap:
            new_cap = max(new_num_vertices, self._cap * 2)
            for name in ("degree", "array_degree", "live_degree", "start", "el"):
                old = getattr(self, name)
                arr = np.full(new_cap, NO_EL if name == "el" else 0, dtype=np.int64)
                arr[: self._cap] = old
                setattr(self, name, arr)
            self._cap = new_cap
        self.num_vertices = new_num_vertices


class PMVertexArray(VertexArray):
    """Vertex metadata on persistent memory (the "No DP" ablation).

    Reads are served from the same NumPy arrays (they alias nothing;
    they are the authoritative DRAM cache), but every mutation is
    mirrored to a PM region with an immediate ``clwb + sfence`` — the
    persistent in-place update pattern whose cost Fig. 1(c) quantifies.
    The PMA metadata (section occupancy) is handled the same way by
    :class:`~repro.core.edge_array.EdgeArray`.

    Only the paper's 16-byte vertex record (degree, start, el) is
    mirrored; ``array_degree``/``live_degree`` are this implementation's
    derivable caches and stay in DRAM in every configuration.
    """

    is_dram = False

    _FIELDS = ("degree", "start", "el")
    _MIRRORED = frozenset(_FIELDS)

    def __init__(self, num_vertices: int, pool: PMemPool, name: str = "vertexarr"):
        super().__init__(num_vertices)
        self.pool = pool
        self._name = name
        self._gen = 0
        self._alloc_regions()

    def _alloc_regions(self) -> None:
        self._regions = {}
        for f in self._FIELDS:
            rname = f"{self._name}.{f}.g{self._gen}"
            r = self.pool.alloc_array(rname, np.int64, self._cap)
            r.fill(NO_EL if f == "el" else 0)
            self._regions[f] = r

    def _mirror(self, field: str, v: int, value: int) -> None:
        # Persistent in-place update: store 8 bytes, flush, fence.
        self._regions[field].write(v, value, payload=8, persist=True)

    def set_start(self, v: int, value: int) -> None:
        super().set_start(v, value)
        self._mirror("start", v, value)

    def set_degree(self, v: int, value: int) -> None:
        super().set_degree(v, value)
        self._mirror("degree", v, value)

    def set_el(self, v: int, value: int) -> None:
        super().set_el(v, value)
        self._mirror("el", v, value)

    def bulk_apply_inserts(self, vs, d_degree, d_array_degree, d_live) -> None:
        # Per-write persistent mirroring keeps the ablation's cost model:
        # degree is mirrored, array/live degree stay DRAM (as in set_*).
        vs = np.asarray(vs, dtype=np.int64)
        dd = np.broadcast_to(np.asarray(d_degree, dtype=np.int64), vs.shape)
        da = np.broadcast_to(np.asarray(d_array_degree, dtype=np.int64), vs.shape)
        dl = np.broadcast_to(np.asarray(d_live, dtype=np.int64), vs.shape)
        for i, v in enumerate(vs.tolist()):
            self.set_degree(v, int(self.degree[v] + dd[i]))
            self.array_degree[v] += da[i]
            self.live_degree[v] += dl[i]

    def bulk_set_el(self, vs, values) -> None:
        vs = np.asarray(vs, dtype=np.int64)
        values = np.broadcast_to(np.asarray(values, dtype=np.int64), vs.shape)
        for i, v in enumerate(vs.tolist()):
            self.set_el(v, int(values[i]))

    def bulk_load(self, start, degree, array_degree, live_degree, el) -> None:
        super().bulk_load(start, degree, array_degree, live_degree, el)
        n = self.num_vertices
        for f in self._FIELDS:
            self._regions[f].nt_write_slice(0, getattr(self, f)[:n])
        self.pool.device.sfence()

    def update_window(self, i0, j, start, degree, array_degree, live_degree, el) -> None:
        super().update_window(i0, j, start, degree, array_degree, live_degree, el)
        for f in self._FIELDS:
            self._regions[f].write_slice(i0, getattr(self, f)[i0:j], payload=0, persist=True)

    def grow(self, new_num_vertices: int) -> None:
        old_cap = self._cap
        super().grow(new_num_vertices)
        if self._cap != old_cap:
            self._gen += 1
            self._alloc_regions()
            for f in self._FIELDS:
                self._regions[f].nt_write_slice(0, getattr(self, f))
            self.pool.device.sfence()


def make_vertex_array(
    num_vertices: int, dram_placement: bool, pool: Optional[PMemPool] = None
) -> VertexArray:
    """Factory selecting the backend per the ``dram_placement`` ablation switch."""
    if dram_placement:
        return VertexArray(num_vertices)
    if pool is None:
        raise ValueError("PM-backed vertex array requires a pool")
    return PMVertexArray(num_vertices, pool)


__all__ = ["VertexArray", "PMVertexArray", "make_vertex_array", "NO_EL"]
