"""Shutdown/reboot and crash recovery (paper §3.1.5).

``open_from_pool`` dispatches on the persistent ``NORMAL_SHUTDOWN``
flag:

* **normal restart** — the DRAM vertex array and PMA metadata were
  persisted at shutdown; load them back (one sequential read) and go.
* **crash recovery** — in order:

  1. roll back an interrupted PMDK transaction (the "No EL&UL"
     ablation's protection);
  2. rebuild the edge-log append cursors from the log bytes;
  3. complete or unwind every per-thread undo log (restore the chunk
     backup / redo the copy-on-write / finish pending log clears);
  4. scan the edge array pivots to reconstruct the vertex array
     (starts, array degrees, tombstone-adjusted live degrees);
  5. replay the edge logs to restore degrees and ``el_v`` chain heads;
  6. recount section occupancy and re-issue any interrupted rebalance.

Every step reads persistent state only; costs accrue to the pool's
modeled clock under the ``recovery`` bucket, which is what the §4.4
recovery evaluation reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import DGAPConfig
from ..errors import RecoveryError
from ..obs.tracer import trace
from ..pmem.pool import PMemPool
from ..pmem.tx import TransactionManager
from .edge_array import EdgeArray
from .edge_log import ENTRY_BYTES, EdgeLogs
from .encoding import SLOT_DTYPE, TOMB_BIT
from .locks import SectionLockTable
from .pma_tree import DensityBounds
from .rebalance import (
    ROOT_EPS,
    ROOT_GEN,
    ROOT_NTHREADS,
    ROOT_NV_HINT,
    ROOT_SEGSLOTS,
    ROOT_SHUTDOWN,
    Rebalancer,
)
from .undo_log import UndoLog
from .vertex_array import make_vertex_array


def open_from_pool(cls, pool: PMemPool, config: Optional[DGAPConfig] = None):
    """Reconstruct a DGAP instance from a pool (normal or crash path)."""
    with trace("open"):
        return _open_from_pool_traced(cls, pool, config)


def _open_from_pool_traced(cls, pool: PMemPool, config: Optional[DGAPConfig]):
    host = cls._blank()
    host.config = config or DGAPConfig()
    cfg = host.config
    host.pool = pool

    seg_slots = pool.read_root(ROOT_SEGSLOTS)
    eps = pool.read_root(ROOT_EPS)
    nthreads = pool.read_root(ROOT_NTHREADS)
    gen = pool.read_root(ROOT_GEN)
    if seg_slots == 0 or eps == 0:
        raise RecoveryError("pool does not contain a DGAP image (missing geometry roots)")

    host._bounds = DensityBounds(cfg.tau_leaf, cfg.tau_root, cfg.rho_leaf, cfg.rho_root)
    edges_region = pool.get_array(f"edges.g{gen}")
    capacity = edges_region.count
    host.ea = EdgeArray(
        pool, capacity, seg_slots, host._bounds,
        gen=gen, create=False, pm_metadata=not cfg.dram_placement,
    )
    host.logs = EdgeLogs(pool, host.ea.n_sections, eps, gen=gen, create=False)
    host.ulogs = [UndoLog(pool, t, cfg.ulog_size, create=False) for t in range(nthreads)]
    host.tx_mgr = None
    if not cfg.use_undo_log:
        host.tx_mgr = TransactionManager(pool, name=f"pmdk-journal.g{gen}")

    host.n_edges_inserted = 0
    host.n_log_inserts = 0
    host.n_array_inserts = 0
    host.n_shift_inserts = 0
    host.n_rebalances = 0
    host.n_resizes = 0
    host.n_compactions = 0
    host.tombstone_pairs_compacted = 0
    host.slots_rebalanced = 0
    host._active_snapshots = 0
    host.rebalancer = Rebalancer(host)
    host._init_view_tracking()
    # Locks are DRAM-only: rebuilt from scratch (paper §3.1.6).  Built
    # *before* replay so the rebalances recovery re-issues run under the
    # same window-lock protocol as live ones; resized afterwards in case
    # recovery itself switched generations.
    host.locks = SectionLockTable(host.ea.n_sections)

    if pool.read_root(ROOT_SHUTDOWN) == 1:
        with trace("normal_restart"):
            _normal_restart(host)
    else:
        with trace("crash_recover"):
            crash_recover(host)

    host._cow_cache = None
    host.track_rebalance_windows = False
    host.op_rebalance_windows = []
    if cfg.cow_degree_cache:
        host._init_cow_cache()
    if host.locks.n_sections != host.ea.n_sections:
        host.locks.resize(host.ea.n_sections)
    pool.write_root(ROOT_SHUTDOWN, 0)
    return host


def _normal_restart(host) -> None:
    """Load the metadata persisted by a graceful shutdown."""
    pool = host.pool
    nv = pool.read_root(ROOT_NV_HINT)
    host.va = make_vertex_array(nv, host.config.dram_placement, pool)
    fields = {}
    nbytes = 0
    for f in ("start", "degree", "array_degree", "live_degree", "el"):
        region = pool.get_array(f"meta.{f}")
        fields[f] = region.view[:nv].copy()
        nbytes += nv * 8
    host.va.bulk_load(
        fields["start"], fields["degree"], fields["array_degree"],
        fields["live_degree"], fields["el"],
    )
    pool.device.account_seq_read(nbytes, bucket="recovery")
    host.logs.rebuild_counts(scalar=host.config.scalar_readpath)
    host.ea.recount_all()
    pool.device.account_seq_read(host.ea.capacity * 4, bucket="recovery")


def crash_recover(host) -> None:
    """Full crash recovery: scan, replay, complete in-flight rebalances."""
    pool = host.pool

    # (0) uncorrectable media damage: repair what is reconstructible,
    # refuse (with the damaged region named) what is not.
    with trace("scrub_poison"):
        _scrub_poison(host)

    # (1) interrupted PMDK transaction (No EL&UL ablation)
    if host.tx_mgr is not None:
        with trace("tx_recover"):
            host.tx_mgr.recover()

    # (2) edge-log cursors (needed by the undo logs' pending clears)
    with trace("rebuild_log_cursors"):
        host.logs.rebuild_counts(scalar=host.config.scalar_readpath)

    # (3) per-thread undo logs: restore / redo / finish clears
    reissue: List[Tuple[int, int]] = []
    with trace("recover_ulogs", threads=len(host.ulogs)):
        for ul in host.ulogs:
            win = host.rebalancer.recover_ulog(ul)
            if win is not None:
                reissue.append(win)

    # (4) pivot scan -> vertex array; (5) log replay -> degrees/chains
    with trace("scan_edge_array"):
        starts, array_deg, live = _scan_edge_array(host)
    nv = starts.size
    degree = array_deg.copy()
    el = np.full(nv, -1, dtype=np.int64)
    with trace("replay_logs"):
        _replay_logs(host, nv, degree, live, el)

    host.va = make_vertex_array(max(nv, 1), host.config.dram_placement, pool)
    if nv:
        host.va.bulk_load(starts, degree, array_deg, live, el)

    # (6) occupancy + interrupted rebalances
    host.ea.recount_all()
    for lo, hi in reissue:
        with trace("reissue_window"):
            _reissue_window(host, lo, hi)


def _scrub_poison(host) -> None:
    """Handle poisoned (uncorrectable) media lines before recovery reads.

    A region whose content recovery never consumes can be *repaired* by
    rewriting it (a media rewrite clears DCPMM poison): undo-log
    payloads with no valid backup, rebalance scratch not being copied
    back, dead (pre-resize) edge-array/log generations, and the
    shutdown metadata arrays (ignored on the crash path, regenerated at
    the next shutdown).  Damage to anything recovery must read — the
    live edge array or logs, undo-log headers, an ACTIVE backup payload,
    a COPYBACK scratch source — is unrecoverable data loss and raises
    :class:`RecoveryError` naming the region.

    Poisoned line ranges are split at region boundaries and every part
    classified by its own region — a single line can straddle a dead
    region and a live one, and classifying the whole range by its first
    byte would either zero live data or refuse a repairable range.
    Poison in unallocated space (nothing recovery reads) is repairable.
    A range whose parts are all repairable is rewritten in one store so
    the whole ECC line is made whole even when parts split it.
    """
    from .undo_log import STATE_ACTIVE, STATE_COPYBACK

    pool = host.pool
    dev = pool.device
    ranges = dev.poisoned_ranges()
    if not ranges:
        return
    gen = host.ea.gen
    headers = {ul.thread_id: ul.read_header() for ul in host.ulogs}
    copyback_srcs = [
        (h.dst_off, h.dst_off + h.length)
        for h in headers.values()
        if h.state == STATE_COPYBACK
    ]

    def repairable(name: str, off: int, n: int) -> bool:
        if name.startswith("ulog.pay.t"):
            h = headers.get(int(name.rsplit("t", 1)[1]))
            # The payload is only consumed by an ACTIVE restore with a
            # committed (valid) backup.
            return h is None or h.state != STATE_ACTIVE or h.valid == 0
        if name.startswith("rebal.scratch."):
            return not any(a < off + n and off < b for a, b in copyback_srcs)
        if name.startswith("meta."):
            return True
        if name.startswith(("edges.g", "elogs.g")):
            return int(name.rsplit("g", 1)[1]) != gen  # dead generation
        return False

    from ..pmem import pool as pool_mod

    def split_parts(off: int, n: int):
        """``(off, n, name)`` parts of a range, cut at region bounds."""
        out = []
        starts = sorted(s for s, _, _ in pool._directory.values())
        cur, end = off, off + n
        while cur < end:
            hit = pool.region_of(cur)
            if hit is not None:
                nxt = min(hit[2], end)
            else:
                nxt = min([s for s in starts if s > cur] + [end])
            out.append((cur, nxt - cur, hit[0] if hit else None))
            cur = nxt
        return out

    for off, n in ranges:
        for poff, pn, name in split_parts(off, n):
            if name is None:
                if poff < pool_mod._DATA_OFF:
                    raise RecoveryError(
                        f"uncorrectable media error in 'pool metadata' at "
                        f"offset {poff} ({pn} bytes): persistent image is "
                        f"damaged beyond repair"
                    )
                continue  # unallocated space: content unused, zeros fine
            if not repairable(name, poff, pn):
                raise RecoveryError(
                    f"uncorrectable media error in {name!r} at offset {poff} "
                    f"({pn} bytes): persistent image is damaged beyond repair"
                )
        # Rewriting the lines clears the poison; the content is dead, so
        # zeros are as good as anything.  One store over the whole range:
        # per-part partial-line stores would leave a straddled ECC line
        # poisoned (the device only clears fully rewritten lines).
        dev.ntstore(off, np.zeros(n, dtype=np.uint8), payload=0)
    dev.sfence()


def _scan_edge_array(host) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pivot scan of the whole edge array in one accounted bulk load.

    The scan reads the array through the device's bulk read layer (one
    sequential stream over the capacity) and reduces it with prefix sums
    over reused scratch; ``scalar_readpath`` selects the retained
    per-slot reference with identical results and accounting.
    """
    if host.config.scalar_readpath:
        return _scan_edge_array_scalar(host)
    ea = host.ea
    cap = ea.capacity
    slots = host.pool.device.load_batch(
        ea.region.offset, cap * 4, bucket="recovery"
    ).view(SLOT_DTYPE)
    ppos = np.flatnonzero(slots < 0)
    vids = (-slots[ppos].astype(np.int64)) - 1
    nv = vids.size
    if nv:
        if not (np.diff(vids) > 0).all():
            raise RecoveryError("pivot ids are not strictly increasing — image corrupt")
        if vids[0] != 0 or vids[-1] != nv - 1:
            raise RecoveryError("pivot id space is not dense — image corrupt")
    starts = ppos + 1
    ends = np.append(ppos[1:], cap)
    sb = host.rebalancer.dram_scratch()
    nz = sb.take("recovery.nz", cap + 1, np.int64)
    nz[0] = 0
    np.cumsum(slots != 0, dtype=np.int64, out=nz[1:])
    array_deg = nz[ends] - nz[starts]
    tz = sb.take("recovery.tz", cap + 1, np.int64)
    tz[0] = 0
    np.cumsum((slots > 0) & ((slots & TOMB_BIT) != 0), dtype=np.int64, out=tz[1:])
    tombs = tz[ends] - tz[starts]
    live = array_deg - 2 * tombs
    return starts.astype(np.int64), array_deg, live


def _scan_edge_array_scalar(host) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-slot reference implementation of :func:`_scan_edge_array`."""
    slots = host.ea.slots
    cap = host.ea.capacity
    vids: List[int] = []
    starts: List[int] = []
    array_deg: List[int] = []
    live: List[int] = []
    for i in range(cap):
        s = int(slots[i])
        if s < 0:
            vids.append(-s - 1)
            starts.append(i + 1)
            array_deg.append(0)
            live.append(0)
        elif s != 0 and starts:
            array_deg[-1] += 1
            if s & int(TOMB_BIT):
                live[-1] -= 1
            else:
                live[-1] += 1
    nv = len(vids)
    if nv:
        if any(b <= a for a, b in zip(vids, vids[1:])):
            raise RecoveryError("pivot ids are not strictly increasing — image corrupt")
        if vids[0] != 0 or vids[-1] != nv - 1:
            raise RecoveryError("pivot id space is not dense — image corrupt")
    host.pool.device.account_seq_read(cap * 4, bucket="recovery")
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(array_deg, dtype=np.int64),
        np.asarray(live, dtype=np.int64),
    )


def _replay_logs(host, nv: int, degree: np.ndarray, live: np.ndarray, el: np.ndarray) -> None:
    """Fold valid edge-log entries back into the vertex metadata (§3.1.5 step 3).

    Validity is decided from the log image; the valid entries are then
    fetched with one random-read gather and folded in with unbuffered
    scatter-adds.  ``scalar_readpath`` selects the retained per-entry
    reference.
    """
    if host.config.scalar_readpath:
        _replay_logs_scalar(host, nv, degree, live, el)
        return
    logs = host.logs
    view = logs.region.view.reshape(logs.n_sections, logs.entries_per_section, 3)
    srcs = view[:, :, 0].ravel()
    dsts = view[:, :, 1].ravel()
    backs = view[:, :, 2].ravel()
    # Valid = all three biased fields nonzero: an in-flight append torn
    # by the crash (8-byte atomicity) persists a strict chunk subset and
    # always leaves a zero field, so it self-invalidates here.
    valid = (srcs != 0) & (dsts != 0) & (backs != 0)
    n_entries = int(valid.sum())
    if n_entries == 0:
        return
    gidx = np.flatnonzero(valid)
    rows = logs.gather_entries(gidx, bucket="recovery")
    s = rows[:, 0].astype(np.int64) - 1
    d = rows[:, 1]
    if s.size and (s.max() >= nv or s.min() < 0):
        raise RecoveryError("edge-log entry references unknown vertex")
    np.add.at(degree, s, 1)
    tomb = (d & TOMB_BIT) != 0
    np.add.at(live, s[~tomb], 1)
    np.subtract.at(live, s[tomb], 1)
    # chain head = the entry appended last; entries of one vertex all live
    # in one section per merge epoch, so the max global index is the head.
    np.maximum.at(el, s, gidx)


def _replay_logs_scalar(
    host, nv: int, degree: np.ndarray, live: np.ndarray, el: np.ndarray
) -> None:
    """Per-entry reference implementation of :func:`_replay_logs`."""
    logs = host.logs
    view = logs.region.view
    total = logs.n_sections * logs.entries_per_section
    n_entries = 0
    for g in range(total):
        p = g * 3
        f0, f1, f2 = int(view[p]), int(view[p + 1]), int(view[p + 2])
        if not (f0 and f1 and f2):
            continue
        n_entries += 1
        s = f0 - 1
        if s >= nv or s < 0:
            raise RecoveryError("edge-log entry references unknown vertex")
        degree[s] += 1
        if f1 & int(TOMB_BIT):
            live[s] -= 1
        else:
            live[s] += 1
        if g > el[s]:
            el[s] = g
    if n_entries:
        host.pool.device.account_rnd_read(n_entries, ENTRY_BYTES, bucket="recovery")


def _reissue_window(host, lo_slot: int, hi_slot: int) -> None:
    """Re-run the rebalance whose undo log was restored (paper Fig. 4 recovery)."""
    S = host.ea.segment_slots
    lo_seg = lo_slot // S
    hi_seg = (hi_slot + S - 1) // S
    width = 1
    level = 0
    n = host.ea.n_sections
    while True:
        aligned_lo = lo_seg // width * width
        if aligned_lo + width >= hi_seg and width <= n:
            break
        width *= 2
        level += 1
    width = min(width, n)
    aligned_lo = lo_seg // width * width
    host.rebalancer.rebalance_window(aligned_lo, min(aligned_lo + width, n), level)


__all__ = ["open_from_pool", "crash_recover"]
