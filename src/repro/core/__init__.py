"""DGAP core: the paper's primary contribution.

Mutable-CSR (VCSR/PMA) edge array on persistent memory with per-section
edge logs, per-thread undo logs, DRAM-placed vertex metadata,
consistent-view snapshots and crash recovery.
"""

from .dgap import DGAP
from .snapshot import DGAPSnapshot

__all__ = ["DGAP", "DGAPSnapshot"]
