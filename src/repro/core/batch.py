"""Edge batches: the unit of mutation for the batched ingestion pipeline.

Every mutation entry point — from :meth:`DynamicGraphSystem.insert_edges`
down to ``DGAP``'s section-grouped PMA writes — operates on an
:class:`EdgeBatch`: three parallel NumPy arrays (``src``, ``dst``,
``tombstone``).  The batch owns construction/validation/coercion from
the accepted stream shapes (``(N, 2)`` arrays, tuple iterables, other
batches) so the hot paths never unpack Python tuples, and provides the
grouping helpers (section keys, grouped order) the PMA pipeline uses to
turn N scalar stores into a handful of span writes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphError, VertexRangeError
from .encoding import MAX_VERTEX, SLOT_DTYPE, TOMB_BIT

EdgeLike = Union["EdgeBatch", np.ndarray, Iterable[Tuple[int, int]]]

#: Default ingest sub-batch size.  Bounded chunks keep streaming
#: semantics (rebalances and log merges interleave with the stream at
#: the same cadence as a per-edge loop) while amortizing interpreter
#: overhead; ``batch_size=None`` opts into one unbounded batch.  512 is
#: the largest size that holds write amplification at the per-edge
#: level across dataset scales: larger rounds let hot sections densify
#: between log merges, escalating rebalance windows on small graphs.
DEFAULT_BATCH_SIZE = 512


class EdgeBatch:
    """A validated batch of edge mutations (inserts and tombstones)."""

    __slots__ = ("src", "dst", "tombstone")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        tombstone: Optional[np.ndarray] = None,
        validate: bool = True,
    ):
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        if tombstone is None:
            self.tombstone = np.zeros(self.src.size, dtype=bool)
        else:
            self.tombstone = np.ascontiguousarray(tombstone, dtype=bool)
        if not (self.src.size == self.dst.size == self.tombstone.size):
            raise GraphError("EdgeBatch arrays must have equal length")
        if validate:
            self.validate()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "EdgeBatch":
        """Build from any iterable of ``(src, dst)`` pairs."""
        buf = [(int(s), int(d)) for s, d in pairs]
        if not buf:
            return cls.empty()
        arr = np.asarray(buf, dtype=np.int64)
        return cls(arr[:, 0], arr[:, 1])

    @classmethod
    def coerce(cls, edges: EdgeLike) -> "EdgeBatch":
        """Accept an ``EdgeBatch``, an ``(N, 2)`` array, or a pair iterable."""
        if isinstance(edges, EdgeBatch):
            return edges
        if isinstance(edges, np.ndarray):
            if edges.size == 0:
                return cls.empty()
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise GraphError(
                    f"edge array must have shape (N, 2), got {edges.shape}"
                )
            return cls(edges[:, 0], edges[:, 1])
        return cls.from_pairs(edges)

    @classmethod
    def single(cls, src: int, dst: int, tombstone: bool = False) -> "EdgeBatch":
        return cls(
            np.asarray([src], dtype=np.int64),
            np.asarray([dst], dtype=np.int64),
            np.asarray([tombstone], dtype=bool),
        )

    @classmethod
    def empty(cls) -> "EdgeBatch":
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), np.empty(0, dtype=bool), validate=False)

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        if self.src.size == 0:
            return
        lo = min(int(self.src.min()), int(self.dst.min()))
        hi = max(int(self.src.max()), int(self.dst.max()))
        if lo < 0:
            raise VertexRangeError("negative vertex id in batch")
        if hi > MAX_VERTEX:
            raise VertexRangeError(
                f"vertex {hi} exceeds encodable maximum {MAX_VERTEX}"
            )

    # -- basics -----------------------------------------------------------
    def __len__(self) -> int:
        return int(self.src.size)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for s, d in zip(self.src.tolist(), self.dst.tolist()):
            yield (s, d)

    def max_vertex(self) -> int:
        if self.src.size == 0:
            return -1
        return max(int(self.src.max()), int(self.dst.max()))

    def select(self, idx: np.ndarray) -> "EdgeBatch":
        """Sub-batch at positions ``idx`` (already-validated values)."""
        return EdgeBatch(
            self.src[idx], self.dst[idx], self.tombstone[idx], validate=False
        )

    def chunks(self, size: int) -> Iterator["EdgeBatch"]:
        """Split into consecutive sub-batches of at most ``size`` edges."""
        if size <= 0:
            raise GraphError("batch chunk size must be positive")
        for a in range(0, len(self), size):
            yield EdgeBatch(
                self.src[a : a + size],
                self.dst[a : a + size],
                self.tombstone[a : a + size],
                validate=False,
            )

    # -- pipeline helpers -------------------------------------------------
    def encoded(self) -> np.ndarray:
        """Vectorized slot encodings: ``dst + 1``, tombstone bit in-band."""
        enc = (self.dst + 1).astype(SLOT_DTYPE)
        if self.tombstone.any():
            enc = enc | np.where(self.tombstone, SLOT_DTYPE(TOMB_BIT), SLOT_DTYPE(0))
        return enc

    def live_deltas(self) -> np.ndarray:
        """+1 per insert, -1 per tombstone (live-degree contribution)."""
        return np.where(self.tombstone, np.int64(-1), np.int64(1))

    def section_keys(self, starts: np.ndarray, segment_slots: int) -> np.ndarray:
        """PMA section of each edge's source pivot (``starts`` per vertex)."""
        return (starts[self.src] - 1) // segment_slots

    def shard_keys(self, n_shards: int) -> np.ndarray:
        """Owning shard of each edge (block-mixed partition on the source).

        The sharding router (:mod:`repro.sharding`) owns an edge by its
        *source* vertex; the partition is the block-mixed stripe of
        :func:`repro.sharding.partition.shard_of` — two vectorized
        integer ops — so the whole routing decision stays on the batch
        hot path.  Destinations stay global and travel with the edge.
        """
        if n_shards <= 0:
            raise GraphError("n_shards must be positive")
        from ..sharding.partition import shard_of

        return shard_of(self.src, n_shards)

    @staticmethod
    def grouped_order(sections: np.ndarray, srcs: np.ndarray) -> np.ndarray:
        """Stable processing order: by section, then by source within it."""
        return np.lexsort((srcs, sections))


def extend_adjacency(
    adj: Sequence[List[int]], srcs: np.ndarray, dsts: np.ndarray
) -> None:
    """Grouped ``adj[src].extend(dsts_of_src)`` preserving per-src order."""
    if srcs.size == 0:
        return
    order = np.argsort(srcs, kind="stable")
    ss = srcs[order]
    dd = dsts[order]
    bounds = np.flatnonzero(ss[1:] != ss[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [ss.size]))
    for a, b in zip(starts.tolist(), ends.tolist()):
        adj[int(ss[a])].extend(dd[a:b].tolist())


__all__ = ["DEFAULT_BATCH_SIZE", "EdgeBatch", "EdgeLike", "extend_adjacency"]
