"""Consistent-view snapshots — the per-task Degree Cache (paper §3.1.3).

Because DGAP stores every vertex's edges in *insertion order*, a
consistent snapshot of the whole graph is nothing more than a copy of
the degree vector at time *t*: the readable edges of vertex ``v`` are
exactly its first ``degree_v^t`` logical edges, no matter what inserts,
merges, rebalances or resizes happen afterwards — merges only ever
*append-preserve* a run's logical prefix, and reads locate data through
the live vertex array.  ``consistent_view()`` therefore copies the
degree (and live-degree) vectors into the task's DRAM space and nothing
else.

Reading vertex ``v`` at time *t* (``degree_t = degree_v^t``):

* the first ``min(array_degree_now, degree_t)`` edges come from the
  edge array run at the *current* ``start_v``;
* any remainder comes from the edge-log back-pointer chain: the chain
  holds logical positions ``[array_degree_now, degree_now)`` newest
  first, so skip the ``degree_now - degree_t`` newest entries and take
  the rest (paper: the FIFO buffer of size ``rest_v^t``).

Tombstones (deleted edges) are filtered at read time: a tombstone
cancels one earlier occurrence of the same destination.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import SnapshotError
from ..nputil import multi_arange
from ..obs.tracer import trace
from .encoding import SLOT_DTYPE, TOMB_BIT

#: historical alias — external code and tests import the underscored name.
_multi_arange = multi_arange


class DGAPSnapshot:
    """One analysis task's consistent view of a DGAP graph."""

    def __init__(self, host):
        self.host = host
        self.num_vertices = host.va.num_vertices
        self._cow = None
        if getattr(host, "_cow_cache", None) is not None:
            # CoW Degree Cache (§6 future work): O(chunks) pin instead of
            # an O(|V|) copy; vectors materialize lazily on bulk access.
            self._cow = host._cow_cache.snapshot()
            self._degree_t: Optional[np.ndarray] = None
            self._live_t: Optional[np.ndarray] = None
        else:
            # The baseline Degree Cache: O(V) DRAM copies at task start.
            self._degree_t = host.va.degrees().copy()
            self._live_t = host.va.live_degrees().copy()
        self._released = False
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        host._snapshot_opened(self)

    @property
    def degree_t(self) -> np.ndarray:
        if self._degree_t is None:
            self._degree_t = self._cow.degrees()
        return self._degree_t

    @property
    def live_t(self) -> np.ndarray:
        if self._live_t is None:
            self._live_t = self._cow.live_degrees()
        return self._live_t

    @property
    def num_edges(self) -> int:
        return int(self.live_t[: self.num_vertices].sum())

    # -- lifecycle ----------------------------------------------------------
    def release(self) -> None:
        if not self._released:
            self._released = True
            if self._cow is not None:
                self._cow.release()
            self.host._snapshot_closed(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def _check(self) -> None:
        if self._released:
            raise SnapshotError("snapshot used after release()")

    # -- per-vertex reads --------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Live (tombstone-adjusted) out-degree of ``v`` at snapshot time."""
        self._check()
        if self._cow is not None and self._live_t is None:
            return self._cow.live_degree(v)  # no materialization needed
        return int(self.live_t[v])

    def slot_values(self, v: int) -> np.ndarray:
        """Encoded slot values of ``v``'s first ``degree_t`` edges, in order."""
        self._check()
        va = self.host.va
        if self._cow is not None and self._degree_t is None:
            deg_t = self._cow.degree(v)
        else:
            deg_t = int(self.degree_t[v])
        if deg_t == 0:
            return np.empty(0, dtype=SLOT_DTYPE)
        a_now = int(va.array_degree[v])
        n_arr = min(a_now, deg_t)
        st = int(va.start[v])
        arr = self.host.ea.slots[st : st + n_arr]
        if deg_t <= n_arr:
            return arr
        deg_now = int(va.degree[v])
        skip = deg_now - deg_t  # entries appended after snapshot time
        take = deg_t - n_arr
        _, _, dst_encs = self.host.logs.walk_chain_arrays(int(va.el[v]), limit=skip + take)
        picked = dst_encs[skip : skip + take]  # newest-first slice we need
        vals = picked[::-1].astype(SLOT_DTYPE)
        return np.concatenate([arr, vals])

    def out_neighbors(self, v: int) -> np.ndarray:
        """Live destination ids of ``v`` at snapshot time (tombstones applied)."""
        vals = self.slot_values(v)
        if vals.size == 0:
            return vals.astype(SLOT_DTYPE)
        tomb = (vals & TOMB_BIT) != 0
        dsts = (vals & ~TOMB_BIT) - 1
        if not tomb.any():
            return dsts
        return _apply_tombstones(dsts, tomb)

    # -- bulk materialization ---------------------------------------------------------
    def materialize_rows(self, vids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Row counts and concatenated live rows of ``vids``, in order.

        Returns ``(counts, dsts)``: ``counts[i]`` is the live degree of
        ``vids[i]`` at snapshot time and ``dsts`` holds the rows back to
        back.  The common case (no pending chains, no tombstones) is
        fully vectorized; vertices that need chain walks or tombstone
        filtering are patched individually.  Both arrays are always
        freshly allocated — never views into the persistent buffers.
        """
        self._check()
        va = self.host.va
        vids = np.asarray(vids, dtype=np.int64)
        deg_t = self.degree_t[vids]
        a_now = va.array_degree[vids]
        starts = va.start[vids]
        n_arr = np.minimum(a_now, deg_t)
        idx = _multi_arange(starts, n_arr)
        vals = self.host.ea.slots[idx] if idx.size else np.empty(0, dtype=SLOT_DTYPE)

        needs_chain = deg_t > n_arr
        has_tomb = np.zeros(vids.size, dtype=bool)
        if vals.size:
            tomb_positions = (vals & TOMB_BIT) != 0
            if tomb_positions.any():
                owner = np.repeat(np.arange(vids.size), n_arr)
                has_tomb[np.unique(owner[tomb_positions])] = True
        special = np.nonzero(needs_chain | has_tomb)[0]

        if special.size == 0:
            dsts = (vals & ~TOMB_BIT) - 1
            return n_arr, dsts.astype(np.int32, copy=False)

        # General path: splice per-vertex corrected segments.
        counts = n_arr.copy()
        patches = {}
        for i in special:
            nb = self.out_neighbors(int(vids[i]))
            patches[int(i)] = nb
            counts[i] = nb.size
        offsets = np.zeros(vids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        dsts = np.empty(int(offsets[-1]), dtype=np.int32)
        # vectorized fill for ordinary vertices
        ordinary = ~(needs_chain | has_tomb)
        src_idx = _multi_arange(starts[ordinary], n_arr[ordinary])
        dst_idx = _multi_arange(offsets[:-1][ordinary], counts[ordinary])
        if src_idx.size:
            slot_vals = self.host.ea.slots[src_idx]
            dsts[dst_idx] = (slot_vals & ~TOMB_BIT) - 1
        for i, nb in patches.items():
            dsts[offsets[i] : offsets[i] + nb.size] = nb
        return counts, dsts

    def to_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, dsts) of the live snapshot graph — cached per snapshot."""
        self._check()
        if self._csr is None:
            with trace("to_csr"):
                nv = self.num_vertices
                counts, dsts = self.materialize_rows(np.arange(nv, dtype=np.int64))
                indptr = np.zeros(nv + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                self._csr = (indptr, dsts)
        return self._csr

    def to_csc(self) -> Tuple[np.ndarray, np.ndarray]:
        """Transpose (in-edges) of the snapshot, built from the CSR by counting sort."""
        from ..analysis.view import build_in_csr

        indptr, dsts = self.to_csr()
        return build_in_csr(indptr, dsts, self.num_vertices)


def _apply_tombstones(dsts: np.ndarray, tomb: np.ndarray) -> np.ndarray:
    """Each tombstone cancels the most recent *earlier* live occurrence of
    its destination; later re-insertions of the same destination survive."""
    keep = np.ones(dsts.size, dtype=bool)
    open_positions: dict[int, list[int]] = {}
    for i in range(dsts.size):
        d = int(dsts[i])
        if tomb[i]:
            keep[i] = False
            stack = open_positions.get(d)
            if stack:
                keep[stack.pop()] = False
        else:
            open_positions.setdefault(d, []).append(i)
    return dsts[keep].astype(np.int32, copy=False)


__all__ = ["DGAPSnapshot"]
