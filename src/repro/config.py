"""Configuration for the DGAP framework (paper §3.1.1).

All of the user-specified initialization parameters from the paper are
here with the paper's defaults (ELOG_SZ = 2 KB, ULOG_SZ = 2 KB), plus
the ablation switches used by Table 5:

* ``use_edge_log``   — ③ per-section edge log ("No EL" when False);
* ``use_undo_log``   — ④ per-thread undo log ("No EL&UL" when also
  False: rebalancing falls back to PMDK transactions);
* ``dram_placement`` — ① vertex array + PMA metadata in DRAM ("No
  EL&UL&DP" when False: everything lives on PM and pays persistent
  in-place update costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pmem.constants import KIB
from .pmem.latency import OPTANE_ADR, LatencyModel


@dataclass
class DGAPConfig:
    """Initialization parameters for one DGAP instance."""

    #: Initial estimate of the number of vertices (pre-allocates the
    #: DRAM vertex array and seeds pivots in the edge array).
    init_vertices: int = 1024

    #: Initial estimate of the number of edges (sizes the PM edge array;
    #: the array resizes automatically when it fills).
    init_edges: int = 16 * 1024

    #: Per-section edge log size in bytes (paper default 2 KB).
    elog_size: int = 2 * KIB

    #: Per-thread undo log size in bytes (paper default 2 KB).
    ulog_size: int = 2 * KIB

    #: Number of writer threads to pre-allocate undo logs for.
    writer_threads: int = 16

    #: Leaf section size of the PMA, in slots.  Sections are the
    #: granularity of edge logs, locks and density accounting.
    segment_slots: int = 512

    #: Edge-log merge trigger: merge when the log reaches this fraction
    #: of its capacity (paper: 90%).
    elog_merge_fraction: float = 0.90

    #: PMA density bounds: leaf upper bound and root upper bound
    #: (thresholds interpolate linearly with tree height, Bender & Hu).
    tau_leaf: float = 0.92
    tau_root: float = 0.70

    #: Lower-bound densities (used when deletions thin out sections).
    rho_leaf: float = 0.08
    rho_root: float = 0.30

    #: Device latency profile for the PM pool.
    profile: LatencyModel = field(default=OPTANE_ADR)

    #: Extra slack factor when sizing the PM edge array: capacity =
    #: next_pow2(init_edges * overprovision) so the PMA has working gaps.
    overprovision: float = 1.30

    #: Total simulated PM pool size in bytes (None = auto-sized with
    #: headroom for several copy-on-write resizes).
    pool_bytes: int | None = None

    #: Take the per-section locks on every operation (real-thread safe).
    #: Off by default: the benchmark drivers are single-threaded (the
    #: virtual-thread scheduler models contention instead) and per-op
    #: Python lock overhead would pollute wall-clock numbers.
    thread_safe: bool = False

    #: How rebalancing distributes gaps among vertex runs:
    #: "proportional" (VCSR's workload-aware weighting — hot vertices get
    #: more room, the paper's design) or "uniform" (classic PMA/PCSR).
    gap_distribution: str = "proportional"

    #: Use the Copy-on-Write Degree Cache (the paper's §6 future work):
    #: snapshots share unchanged degree chunks with the writer instead of
    #: copying the whole O(|V|) vector per analysis task.
    cow_degree_cache: bool = False

    # ---- ablation switches (Table 5) -----------------------------------
    use_edge_log: bool = True
    use_undo_log: bool = True
    dram_placement: bool = True

    #: Run the retained scalar (per-slot/per-entry Python loop) reference
    #: implementations of the read-side hot paths — rebalance gather and
    #: plan, the recovery pivot scan, log replay and log-cursor rebuild —
    #: instead of the vectorized bulk-read ones.  Result- and
    #: accounting-identical by contract (the equivalence tests pin this);
    #: exists for differential testing and the speedup benchmarks, not
    #: for production use.
    scalar_readpath: bool = False

    def __post_init__(self) -> None:
        if self.init_vertices <= 0 or self.init_edges <= 0:
            raise ValueError("init_vertices and init_edges must be positive")
        if not 0.0 < self.elog_merge_fraction <= 1.0:
            raise ValueError("elog_merge_fraction must be in (0, 1]")
        if not (0 < self.tau_root <= self.tau_leaf <= 1.0):
            raise ValueError("need 0 < tau_root <= tau_leaf <= 1")
        if not (0 <= self.rho_leaf <= self.rho_root < self.tau_root):
            raise ValueError("need 0 <= rho_leaf <= rho_root < tau_root")
        if self.segment_slots < 64 or self.segment_slots & (self.segment_slots - 1):
            raise ValueError("segment_slots must be a power of two >= 64")
        if self.gap_distribution not in ("proportional", "uniform"):
            raise ValueError("gap_distribution must be 'proportional' or 'uniform'")

    @property
    def elog_entries(self) -> int:
        """Edge-log capacity in 12-byte entries."""
        from .core.edge_log import ENTRY_BYTES

        return max(1, self.elog_size // ENTRY_BYTES)


__all__ = ["DGAPConfig"]
