"""Experiment harness: build systems, ingest streams, run kernels.

One place owns the paper's protocol (§4.1):

* every system is initialized with the dataset's true size (the paper's
  ``INIT_*_SIZE`` estimations);
* the first 10% of the shuffled stream warms the system; counters are
  checkpointed; the remaining 90% is the timed window;
* analysis runs on the system's own view of the final graph.

Built systems are cached per (system, dataset, scale) so the analysis
experiments (Fig. 7/8, Table 4) reuse one ingest per system instead of
re-inserting for every kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..algorithms import KERNELS
from ..analysis.view import BaseGraphView
from ..baselines import SYSTEMS, DynamicGraphSystem, InsertProfile, StaticCSR
from ..config import DGAPConfig
from ..core.batch import DEFAULT_BATCH_SIZE
from ..datasets import DatasetSpec, env_scale, get_dataset

#: kernel -> does it take a source vertex (Table 1)
SOURCE_KERNELS = {"bfs", "bc"}



@dataclass
class InsertResult:
    """Outcome of one timed ingest window (post-warm-up)."""

    system: str
    dataset: str
    edges_timed: int
    profile: InsertProfile
    wall_s: float
    write_amplification: float
    counters: Dict[str, float] = field(default_factory=dict)

    def meps(self, threads: int = 1) -> float:
        return self.profile.meps(threads)


@dataclass
class AnalysisResult:
    """Modeled kernel times for one system/dataset/kernel triple."""

    system: str
    dataset: str
    kernel: str
    seconds_by_threads: Dict[int, float]
    wall_s: float


def build_system(
    name: str,
    num_vertices: int,
    num_edges: int,
    **kwargs,
) -> DynamicGraphSystem:
    """Instantiate one compared system sized for the dataset."""
    if name == "dgap":
        cfg = kwargs.pop("config", None) or DGAPConfig(
            init_vertices=num_vertices, init_edges=num_edges, **kwargs
        )
        return SYSTEMS["dgap"](num_vertices, num_edges, config=cfg)
    return SYSTEMS[name](num_vertices, num_edges, **kwargs)


def ingest(
    system: DynamicGraphSystem,
    spec: DatasetSpec,
    edges: np.ndarray,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
) -> InsertResult:
    """The paper's ingest protocol: 10% warm-up, then the timed window.

    Edges flow through :meth:`DynamicGraphSystem.insert_edges` as
    ``(N, 2)`` arrays split into ``batch_size`` sub-batches (None = one
    batch; 1 = the historical per-edge path).  Per-phase wall-clock and
    modeled time land in ``InsertResult.counters`` so reports can show
    interpreter overhead separately from the modeled device time.
    """
    warm, timed = spec.split_warmup(edges)
    w0 = perf_counter()
    system.insert_edges(warm, batch_size=batch_size)
    warm_wall = perf_counter() - w0
    cp = system.checkpoint()
    stats_before = [d.stats.snapshot() for d in system._devices()]
    t0 = perf_counter()
    system.insert_edges(timed, batch_size=batch_size)
    system.finalize()
    wall = perf_counter() - t0
    profile = system.insert_profile(since=cp, edges=timed.shape[0])
    stored = payload = 0
    for dev, before in zip(system._devices(), stats_before):
        d = dev.stats.delta_since(before)
        stored += d.stored_bytes
        payload += d.payload_bytes
    wa = stored / payload if payload else 0.0
    return InsertResult(
        system=system.name,
        dataset=spec.name,
        edges_timed=int(timed.shape[0]),
        profile=profile,
        wall_s=wall,
        write_amplification=wa,
        counters={
            "batch_size": float(batch_size or 0),
            "warmup_wall_s": warm_wall,
            "warmup_modeled_s": cp.ns * 1e-9,
            "timed_wall_s": wall,
            "timed_modeled_s": profile.modeled_ns * 1e-9,
        },
    )


def run_kernel(
    view: BaseGraphView,
    kernel: str,
    source: int = 0,
    threads: Tuple[int, ...] = (1, 16),
) -> Dict[int, float]:
    """Run one kernel on a view; modeled seconds per thread count."""
    view.reset_clock()
    fn = KERNELS[kernel]
    if kernel in SOURCE_KERNELS:
        fn(view, source)
    else:
        fn(view)
    return {p: view.seconds(p) for p in threads}


# ----------------------------------------------------------------------
# built-system cache (one ingest per system+dataset for all kernels)
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple, Tuple[DynamicGraphSystem, InsertResult]] = {}


def get_built_system(
    name: str,
    dataset: str,
    scale: Optional[float] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    **kwargs,
) -> Tuple[DynamicGraphSystem, InsertResult]:
    scale = env_scale() if scale is None else scale
    key = (name, dataset, scale, batch_size, tuple(sorted(kwargs.items())))
    if key not in _CACHE:
        spec = get_dataset(dataset)
        edges = spec.generate(scale)
        nv, _ = spec.sizes(scale)
        system = build_system(name, nv, edges.shape[0], **kwargs)
        _CACHE[key] = (system, ingest(system, spec, edges, batch_size=batch_size))
    return _CACHE[key]


def get_static_csr(dataset: str, scale: Optional[float] = None) -> StaticCSR:
    scale = env_scale() if scale is None else scale
    key = ("csr", dataset, scale, ())
    if key not in _CACHE:
        spec = get_dataset(dataset)
        edges = spec.generate(scale)
        nv, _ = spec.sizes(scale)
        csr = StaticCSR(nv, edges)
        _CACHE[key] = (csr, None)
    return _CACHE[key][0]


def clear_cache() -> None:
    _CACHE.clear()


def pick_source(dataset: str, scale: Optional[float] = None) -> int:
    """A deterministic well-connected source vertex for BFS/BC."""
    csr = get_static_csr(dataset, scale)
    view = csr.analysis_view()
    return int(np.argmax(view.out_degrees()))


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "InsertResult",
    "AnalysisResult",
    "build_system",
    "ingest",
    "run_kernel",
    "get_built_system",
    "get_static_csr",
    "clear_cache",
    "pick_source",
    "SOURCE_KERNELS",
]
