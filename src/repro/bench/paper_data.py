"""The paper's reported numbers, for paper-vs-measured comparison output.

Transcribed from the SC'23 paper: Fig. 6 (single-thread insert MEPS),
Table 3 (insert MEPS at 1/8/16 threads), Table 4 (kernel seconds, T1
and T16), Table 5 (ablation insert seconds), and the headline claims.
Benchmarks print these next to measured values; absolute magnitudes are
not expected to match (simulated substrate, scaled datasets) — the
ratios and orderings are what the reproduction targets (DESIGN.md §1).
"""

# ---- Fig. 6 / Table 3: insert throughput in MEPS ------------------------
# {dataset: {system: (T1, T8, T16)}}
TABLE3_MEPS = {
    "orkut": {
        "dgap": (2.52, 6.49, 7.37),
        "bal": (2.35, 5.97, 5.26),
        "llama": (1.84, 2.33, 2.40),
        "graphone": (1.23, 2.54, 2.86),
        "xpgraph": (1.86, 4.95, 5.44),
    },
    "livejournal": {
        "dgap": (2.59, 6.27, 7.95),
        "bal": (1.26, 4.79, 5.92),
        "llama": (0.97, 1.07, 1.09),
        "graphone": (1.23, 2.63, 2.94),
        "xpgraph": (1.73, 4.92, 5.66),
    },
    "citpatents": {
        "dgap": (2.43, 6.82, 7.23),
        "bal": (0.85, 3.45, 4.68),
        "llama": (0.40, 0.41, 0.42),
        "graphone": (1.22, 2.62, 2.81),
        "xpgraph": (1.48, 5.05, 5.75),
    },
    "twitter": {
        "dgap": (1.86, 5.35, 6.82),
        "bal": (2.02, 5.51, 5.99),
        "llama": (1.61, 2.13, 2.17),
        "graphone": (0.73, 1.99, 2.43),
        "xpgraph": (1.99, 4.88, 5.33),
    },
    "friendster": {
        "dgap": (1.92, 4.29, 6.03),
        "bal": (1.82, 5.63, 5.82),
        "llama": (1.23, 1.52, 1.53),
        "graphone": (0.57, 2.40, 3.35),
        "xpgraph": (1.60, 4.41, 5.00),
    },
    "protein": {
        "dgap": (2.19, 7.43, 8.30),
        "bal": (2.31, 5.82, 6.23),
        "llama": (2.12, 3.09, 3.18),
        "graphone": (1.02, 3.21, 4.08),
        "xpgraph": (1.82, 5.08, 5.76),
    },
}

FIG6_MEPS = {ds: {s: v[0] for s, v in row.items()} for ds, row in TABLE3_MEPS.items()}

# ---- Table 4: kernel execution seconds, (T1, T16) -------------------------
# {kernel: {dataset: {system: (T1, T16)}}}
TABLE4_SECONDS = {
    "pr": {
        "orkut": {
            "csr": (24.18, 1.67), "dgap": (31.55, 2.21), "bal": (53.21, 3.57),
            "llama": (50.24, 9.51), "graphone": (36.01, 2.63), "xpgraph": (49.87, 3.72),
        },
        "livejournal": {
            "csr": (9.07, 0.71), "dgap": (12.46, 0.94), "bal": (32.12, 2.30),
            "llama": (32.69, 5.12), "graphone": (17.14, 1.24), "xpgraph": (36.45, 3.04),
        },
        "citpatents": {
            "csr": (5.83, 0.49), "dgap": (8.17, 0.63), "bal": (23.47, 1.73),
            "llama": (23.30, 2.83), "graphone": (9.75, 0.70), "xpgraph": (25.21, 2.38),
        },
    },
    "bfs": {
        "orkut": {
            "csr": (0.33, 0.03), "dgap": (0.46, 0.04), "bal": (0.74, 0.06),
            "llama": (1.44, 0.33), "graphone": (0.12, 0.01), "xpgraph": (0.25, 0.03),
        },
        "livejournal": {
            "csr": (0.34, 0.03), "dgap": (0.43, 0.04), "bal": (1.26, 0.10),
            "llama": (1.93, 0.50), "graphone": (0.20, 0.03), "xpgraph": (0.42, 0.05),
        },
        "citpatents": {
            "csr": (0.47, 0.04), "dgap": (0.57, 0.05), "bal": (1.84, 0.14),
            "llama": (3.46, 0.68), "graphone": (0.19, 0.03), "xpgraph": (0.35, 0.06),
        },
    },
    "bc": {
        "orkut": {
            "csr": (5.22, 0.42), "dgap": (5.40, 0.42), "bal": (6.10, 0.46),
            "llama": (79.07, 5.71), "graphone": (7.98, 0.58), "xpgraph": (8.01, 0.81),
        },
        "livejournal": {
            "csr": (4.37, 0.33), "dgap": (4.23, 0.32), "bal": (4.91, 0.36),
            "llama": (39.72, 2.76), "graphone": (5.06, 0.36), "xpgraph": (6.62, 0.61),
        },
        "citpatents": {
            "csr": (3.90, 0.29), "dgap": (3.49, 0.26), "bal": (3.71, 0.27),
            "llama": (24.72, 1.70), "graphone": (3.54, 0.26), "xpgraph": (5.15, 0.47),
        },
    },
    "cc": {
        "orkut": {
            "csr": (2.60, 0.42), "dgap": (3.45, 0.73), "bal": (5.71, 0.88),
            "llama": (5.94, 0.87), "graphone": (4.08, 0.75), "xpgraph": (4.77, 0.71),
        },
        "livejournal": {
            "csr": (0.99, 0.42), "dgap": (1.40, 0.80), "bal": (3.40, 0.87),
            "llama": (3.76, 1.17), "graphone": (2.16, 0.75), "xpgraph": (3.20, 1.03),
        },
        "citpatents": {
            "csr": (1.67, 0.48), "dgap": (2.34, 0.49), "bal": (6.68, 1.43),
            "llama": (5.30, 2.07), "graphone": (3.28, 0.81), "xpgraph": (5.54, 1.68),
        },
    },
}

# ---- Table 5: DGAP component ablation, insert seconds ----------------------
TABLE5_SECONDS = {
    "orkut": {"dgap": 83.55, "no_el": 374.86, "no_el_ul": 383.52, "no_el_ul_dp": 588.37},
    "livejournal": {"dgap": 29.74, "no_el": 136.28, "no_el_ul": 146.09, "no_el_ul_dp": 240.46},
    "citpatents": {"dgap": 12.25, "no_el": 51.26, "no_el_ul": 58.47, "no_el_ul_dp": 107.39},
}

# ---- Fig. 9: ELOG_SZ sweep (the paper's qualitative series) -----------------
FIG9_ELOG_SIZES = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
FIG9_UTILIZATION_RANGE = (0.056, 0.8096)  # 16 KB -> 64 B utilization span

# ---- Fig. 5: XPGraph archiving thresholds ------------------------------------
FIG5_THRESHOLDS = [1 << k for k in range(6, 15)]

# ---- headline claims -----------------------------------------------------------
HEADLINES = {
    "update_speedup_max": 3.2,     # vs state-of-the-art PM frameworks
    "analysis_speedup_max": 3.77,
    "fig1a_write_amplification": 7.0,
    "el_wa_reduction_orkut": 6.0,  # §4.4
    "inplace_vs_seq": 7.0,         # Fig. 1(c)
    "dgap_analysis_overhead_vs_csr": 1.37,  # §4.3 average
}

__all__ = [
    "TABLE3_MEPS",
    "FIG6_MEPS",
    "TABLE4_SECONDS",
    "TABLE5_SECONDS",
    "FIG9_ELOG_SIZES",
    "FIG9_UTILIZATION_RANGE",
    "FIG5_THRESHOLDS",
    "HEADLINES",
]
