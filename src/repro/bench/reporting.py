"""Plain-text tables for the benchmark harness.

Every experiment prints two things: the regenerated table/figure series
(same rows the paper reports) and, where the paper gives numbers, a
``paper vs measured`` comparison so EXPERIMENTS.md can be audited
against ``bench_output.txt`` directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: The canonical distribution summary order, shared by every consumer
#: (crash-sweep reports, shard benchmarks, the serving layer's
#: tail-latency tables) so tables line up.  ``p99`` is the serving
#: layer's headline tail metric.
DISTRIBUTION_KEYS = ("min", "p50", "mean", "p90", "p95", "p99", "max")

#: percentile value behind each ``pNN`` key (min/mean/max are computed
#: directly).
_PERCENTILES = {"p50": 50, "p90": 90, "p95": 95, "p99": 99}


def distribution_stats(values, unit: str = "us") -> Dict[str, float]:
    """Summary of a sample along :data:`DISTRIBUTION_KEYS`.

    Keys are suffixed with ``unit`` (``min_us``, ``p50_us``, ...);
    values are expected pre-scaled to that unit.  Returns ``{}`` for an
    empty sample.  This is the single percentile helper — the crash
    sweep's recovery-time report, the shard-scaling benchmark and the
    serve-workload latency report all route through it instead of
    hand-rolling ``np.percentile`` calls, and every consumer derives
    its column list from :data:`DISTRIBUTION_KEYS` so the two can never
    drift.
    """
    import numpy as np

    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return {}
    out: Dict[str, float] = {}
    for key in DISTRIBUTION_KEYS:
        if key == "min":
            val = float(vals.min())
        elif key == "mean":
            val = float(vals.mean())
        elif key == "max":
            val = float(vals.max())
        else:
            val = float(np.percentile(vals, _PERCENTILES[key]))
        out[f"{key}_{unit}"] = val
    return out


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.2f}",
) -> str:
    srows: List[List[str]] = []
    for row in rows:
        srows.append(
            [floatfmt.format(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def paper_vs_measured(
    title: str,
    rows: Iterable[Sequence],
    headers: Sequence[str] = ("metric", "paper", "measured", "ok?"),
) -> str:
    """Rows: (metric, paper_value, measured_value, predicate_result)."""
    formatted = []
    for metric, paper, measured, ok in rows:
        formatted.append(
            (
                metric,
                paper if isinstance(paper, str) else f"{paper:g}",
                measured if isinstance(measured, str) else f"{measured:.3g}",
                "yes" if ok else "NO",
            )
        )
    return format_table(f"{title} — paper vs measured", headers, formatted)


def ingest_phase_table(results: Iterable) -> str:
    """Per-phase wall-clock vs modeled time for ingest results.

    Rows come from ``InsertResult.counters`` (harness-populated): one
    row per (system, phase) with the measured Python wall-clock next to
    the modeled device time, so interpreter overhead is visible and
    comparable across batch sizes.
    """
    rows = []
    for r in results:
        c = getattr(r, "counters", {}) or {}
        batch = int(c.get("batch_size", 0)) or "-"
        for phase in ("warmup", "timed"):
            wall = c.get(f"{phase}_wall_s")
            modeled = c.get(f"{phase}_modeled_s")
            if wall is None:
                continue
            ratio = wall / modeled if modeled else 0.0
            rows.append((r.system, batch, phase, wall, modeled, ratio))
    return format_table(
        "ingest wall-clock vs modeled (per phase)",
        ["system", "batch", "phase", "wall (s)", "modeled (s)", "wall/modeled"],
        rows,
        floatfmt="{:.3f}",
    )


def analysis_loop_table(pair, title: str = "analysis loop") -> str:
    """Summarize a :class:`~repro.bench.analysis_loop.LoopPair`.

    Per-round analysis wall clock for both arms (outputs and modeled
    times are asserted identical before this table can exist), then the
    cache counters that prove incrementality.
    """
    cached, uncached = pair.cached, pair.uncached
    rows = [
        (r, cw, uw, uw / max(cw, 1e-12))
        for r, (cw, uw) in enumerate(zip(cached.round_wall(), uncached.round_wall()))
    ]
    rows.append(("total", cached.analysis_wall_s, uncached.analysis_wall_s, pair.speedup))
    head = format_table(
        f"{title} — {cached.dataset} (scale {cached.scale:g}, "
        f"{cached.rounds} rounds, kernels {','.join(cached.kernels)})",
        ["round", "cached wall (s)", "uncached wall (s)", "speedup"],
        rows,
        floatfmt="{:.4f}",
    )
    counters = format_table(
        "view-cache counters (cached arm)",
        ["counter", "value"],
        sorted(cached.counters.items()),
    )
    return head + "\n\n" + counters


def temporal_loop_table(pair, title: str = "temporal loop") -> str:
    """Summarize a :class:`~repro.bench.temporal_loop.TemporalLoopPair`.

    Per-step mutation volume and analysis wall clock for both arms
    (kernel outputs, modeled times and per-step CSR bytes are asserted
    identical before this table can exist), then the window and
    view-cache counters.
    """
    cached, scratch = pair.cached, pair.scratch
    cw = [0.0] * len(cached.steps)
    sw = [0.0] * len(scratch.steps)
    for r in cached.records:
        cw[r.round] += r.wall_s
    for r in scratch.records:
        sw[r.round] += r.wall_s
    rows = [
        (s.step, s.added, s.churned, s.expired, "yes" if s.compacted else "",
         c, u, u / max(c, 1e-12))
        for s, c, u in zip(cached.steps, cw, sw)
    ]
    rows.append((
        "total",
        sum(s.added for s in cached.steps),
        sum(s.churned for s in cached.steps),
        sum(s.expired for s in cached.steps),
        str(cached.compactions),
        cached.analysis_wall_s, scratch.analysis_wall_s, pair.speedup,
    ))
    head = format_table(
        f"{title} — {cached.dataset} (scale {cached.scale:g}, window "
        f"{cached.window}, compact at {cached.compact_threshold:g}, "
        f"kernels {','.join(cached.kernels)})",
        ["step", "added", "churned", "expired", "compact",
         "cached wall (s)", "scratch wall (s)", "speedup"],
        rows,
        floatfmt="{:.4f}",
    )
    counters = format_table(
        "window + view-cache counters (cached arm)",
        ["counter", "value"],
        sorted(cached.counters.items()),
    )
    return head + "\n\n" + counters


def crash_sweep_table(report, title: str = "crash sweep") -> str:
    """Summarize a :class:`~repro.testing.SweepReport` (§4.4 robustness).

    One table: sweep coverage (events, points, exhaustive or sampled),
    oracle outcomes (in-flight ops that landed, reported-unrecoverable
    points under a poison policy), and the modeled recovery-time
    distribution across crash points.
    """
    pol = report.policy
    faults = ", ".join(
        s for s, on in (
            ("torn-stores", pol.torn_stores),
            ("persist-reorder", pol.persist_reorder),
            (f"poison={pol.poison_on_crash}", pol.poison_on_crash > 0),
            (f"transient={pol.transient_read_rate:g}", pol.transient_read_rate > 0),
        ) if on
    ) or "none (clean ADR)"
    rows = [
        ("persistence events", report.total_events),
        ("crash points swept", report.crash_points),
        ("coverage", "exhaustive" if report.exhaustive else "sampled"),
        ("fault policy", faults),
        ("in-flight op landed", report.in_flight_applied_count()),
        ("unrecoverable (reported)", report.unrecoverable_count()),
    ]
    stats = report.recovery_stats()
    for name in DISTRIBUTION_KEYS:
        key = f"{name}_us"
        if key in stats:
            rows.append((f"recovery {name} (us)", stats[key]))
    return format_table(title, ["metric", "value"], rows, floatfmt="{:.2f}")


def soak_table(report, title: str = "soak sweep") -> str:
    """Summarize a :class:`~repro.testing.SoakReport` (PR 7 robustness).

    Header rows give the run-level verdict — fault points survived,
    final health, damage accounting, and which oracle legs ran — then
    one row per round with that round's fault/repair activity.
    """
    pol = report.config.faults
    head = [
        ("ops applied / total", f"{report.ops_applied} / {report.ops_total}"),
        ("ops skipped (enumerated)", report.ops_skipped),
        ("fault points survived", report.fault_points),
        ("  transient (retried)", report.transient_faults),
        ("  hard poison", report.poison_events),
        ("quarantined ranges", report.quarantined),
        ("lost edges (enumerated)", report.lost_edges),
        ("final health", report.health.value),
        ("byte-identity checked", "yes" if report.byte_compared else "no (lossy divergence)"),
        ("fault policy", f"poison={pol.read_poison_rate:g} transient={pol.transient_read_rate:g} seed={pol.seed}"),
    ]
    out = [format_table(title, ["metric", "value"], head)]
    rows = [
        (
            r.round_index, r.ops_applied, r.scrub_steps,
            r.transient_faults, r.read_retries, r.poison_events,
            r.quarantined, r.lost_edges, r.health.value,
            r.analysis_result if r.analyzed else "-",
        )
        for r in report.rounds
    ]
    out.append(format_table(
        f"{title} — per round",
        ["round", "ops", "scrubs", "transient", "retries", "poison",
         "quarantined", "lost", "health", "edges seen"],
        rows,
    ))
    return "\n\n".join(out)


def race_check_table(report, title: str = "race check") -> str:
    """Summarize a :class:`~repro.testing.RaceCheckReport`.

    One row per scenario: how many schedules were driven, whether the
    schedule space was exhausted or sampled, how many interleaving
    decision points and protocol events those schedules covered, and
    the lock-discipline oracle's verdict (violations must be zero).
    """
    rows = [
        (
            s.name,
            s.schedules,
            "exhaustive" if s.exhaustive else "sampled",
            s.decision_points,
            s.events,
            s.violations,
            "ok" if s.ok else "FAIL",
        )
        for s in report.scenarios
    ]
    table = format_table(
        title,
        ["scenario", "schedules", "coverage", "decisions", "events", "violations", "verdict"],
        rows,
    )
    if report.failures:
        table += "\nfailures:\n" + "\n".join(
            f"  {f}" for f in report.failures[:10]
        )
    return table


def race_check_dry_table(counts, title: str = "race check (dry run)") -> str:
    """Per-scenario event counts from one default schedule each —
    the pre-flight view of how much interleaving surface a full
    exploration would cover (mirrors the crash sweep's dry run)."""
    kinds = sorted({k for c in counts.values() for k in c if k != "decision-points"})
    rows = [
        (name,)
        + tuple(c.get(k, 0) for k in kinds)
        + (c.get("decision-points", 0),)
        for name, c in counts.items()
    ]
    return format_table(title, ["scenario"] + kinds + ["decisions"], rows)


def profile_table(tracer, title: str = "profile") -> str:
    """Per-phase attribution table for a :class:`~repro.obs.Tracer`.

    One row per span name with *self* attribution (each span's counter
    delta minus its children's), plus an ``(untraced)`` row for device
    activity outside every root span and a ``total`` row from
    ``tracer.total_delta()``.  Self deltas partition the traced
    interval, so the modeled-ms column sums to the total row within
    float rounding and the integer columns sum exactly.
    """
    from ..obs import aggregate_phases

    rows_in, untraced = aggregate_phases(tracer)
    total = tracer.total_delta()
    total_ns = total.modeled_ns if total is not None else 0.0

    def fmt(name, count, modeled_ns, wall_ns, counters, wa):
        share = 100.0 * modeled_ns / total_ns if total_ns else 0.0
        return (
            name,
            count,
            modeled_ns * 1e-6,
            share,
            wall_ns * 1e-6,
            counters["stores"],
            counters["flushes"],
            counters["fences"],
            counters["media_bytes"] // 1024,
            wa,
        )

    rows = [
        fmt(r.name, r.count, r.modeled_ns, r.wall_ns, r.counters,
            r.write_amplification())
        for r in rows_in
    ]
    if untraced is not None:
        rows.append(fmt(
            untraced.name, "-", untraced.modeled_ns, untraced.wall_ns,
            untraced.counters, untraced.write_amplification(),
        ))
    if total is not None:
        rows.append(fmt(
            "total", "-", total.modeled_ns, 0,
            {k: getattr(total, k)
             for k in ("stores", "flushes", "fences", "media_bytes")},
            total.write_amplification(),
        ))
    return format_table(
        title,
        ["phase", "spans", "modeled (ms)", "%", "self wall (ms)",
         "stores", "flushes", "fences", "media (KiB)", "WA"],
        rows,
        floatfmt="{:.3f}",
    )


#: tables collected during a benchmark session; pytest's capture swallows
#: per-test stdout of passing tests, so the benchmarks' conftest flushes
#: this registry in ``pytest_terminal_summary`` — that is how every table
#: reaches the tee'd ``bench_output.txt``.
def serve_latency_table(report, title: str = "serve latency") -> str:
    """Summarize a :class:`~repro.serve.driver.ServeReport`.

    Two tables: run-level facts (mode, mix, view reuse, twin identity
    and read speedup when the twin ran), then the per-class modeled
    latency distribution along :data:`DISTRIBUTION_KEYS` — ``p99``
    included, since tail behavior (the refresh-triggering read after a
    write) is the point of the serving layer.
    """
    head = [
        ("ops (reads / writes)", f"{report.ops} ({report.reads} / {report.writes})"),
        ("load model", f"{report.mode} ({report.n_clients} clients)"),
        ("view refreshes / reuses", f"{report.refreshes} / {report.reuses}"),
        ("reuse ratio", report.reuse_ratio),
        ("makespan (modeled ms)", report.makespan_ns * 1e-6),
    ]
    if report.identity_checked:
        head += [
            ("twin byte-identical", "yes" if report.identity_ok else "NO"),
            ("read speedup vs per-query snapshots (modeled)", report.modeled_read_speedup),
            ("read speedup vs per-query snapshots (wall)", report.wall_read_speedup),
        ]
    out = [format_table(title, ["metric", "value"], head)]
    for arm in ("served", "snapshot"):
        stats = report.stats(arm)
        if not stats:
            continue
        rows = [
            [cls, len(report.latencies[cls]) if arm == "served"
             else len(report.snapshot_latencies[cls])]
            + [st.get(f"{k}_us", 0.0) for k in DISTRIBUTION_KEYS]
            for cls, st in stats.items()
        ]
        out.append(format_table(
            f"{title} — {arm} arm (modeled us per query)",
            ["class", "ops", *DISTRIBUTION_KEYS],
            rows,
        ))
    return "\n\n".join(out)


_REPORTS: List[str] = []


def emit(text: str) -> None:
    """Print a report block and queue it for the end-of-session summary."""
    print("\n" + text + "\n")
    _REPORTS.append(text)


def flush_reports() -> List[str]:
    out = list(_REPORTS)
    _REPORTS.clear()
    return out


__all__ = [
    "DISTRIBUTION_KEYS",
    "distribution_stats",
    "format_table",
    "paper_vs_measured",
    "ingest_phase_table",
    "analysis_loop_table",
    "crash_sweep_table",
    "serve_latency_table",
    "soak_table",
    "profile_table",
    "race_check_table",
    "race_check_dry_table",
    "emit",
    "flush_reports",
]
