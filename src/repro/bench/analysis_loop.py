"""Ingest→analyze loop (Fig. 7 cadence): incremental views vs from-scratch.

The paper's analysis experiments build one final graph and run each
kernel once; real dynamic-graph deployments interleave ingest with
repeated analysis.  This driver replays that cadence — ``rounds``
ingest slices, each followed by the full kernel sweep — twice on
identical streams: once with view caching enabled (epoch-versioned CSR
cache + dirty-section delta maintenance, DESIGN.md §7) and once with
the seed's from-scratch materialization.

Two invariants are *asserted*, not just reported:

* every kernel output is byte-identical across the two arms (the cache
  must be invisible to analysis results);
* every modeled kernel time is exactly equal (materialization is host
  work, never accounted on the simulated device — caching it cannot
  change the paper's modeled numbers).

The wall-clock ratio between the arms is the benchmark's headline
(``benchmarks/test_analysis_loop.py`` pins it against the seed
baseline); ``verify_view_counters`` proves *incrementality* itself with
deterministic counter checks rather than timing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms import KERNELS
from ..datasets import get_dataset
from .harness import SOURCE_KERNELS, build_system

#: the full Table 1 sweep, run after every ingest round.
DEFAULT_KERNELS: Tuple[str, ...] = ("pr", "cc", "bfs", "bc")


@dataclass
class KernelRecord:
    """One kernel trial inside the loop."""

    round: int
    kernel: str
    source: int  #: start vertex for bfs/bc trials; -1 for pr/cc
    digest: str  #: sha256 of the output array's bytes
    modeled_s: float  #: modeled seconds at 1 thread (device clock)
    wall_s: float  #: host wall time incl. view acquisition


@dataclass
class LoopResult:
    """One arm (cached or uncached) of the ingest→analyze loop."""

    dataset: str
    scale: float
    rounds: int
    kernels: Tuple[str, ...]
    view_caching: bool
    records: List[KernelRecord] = field(default_factory=list)
    ingest_wall_s: float = 0.0
    analysis_wall_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def round_wall(self) -> List[float]:
        """Analysis wall seconds summed per round."""
        out = [0.0] * self.rounds
        for r in self.records:
            out[r.round] += r.wall_s
        return out


@dataclass
class LoopPair:
    """Cached vs uncached arms over the identical stream (verified)."""

    cached: LoopResult
    uncached: LoopResult

    @property
    def speedup(self) -> float:
        """Uncached / cached analysis wall time (the ≥3x criterion)."""
        return self.uncached.analysis_wall_s / max(self.cached.analysis_wall_s, 1e-12)


def run_analysis_loop(
    dataset: str = "orkut",
    scale: float = 0.25,
    rounds: int = 10,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    sources: int = 16,
    batch_size: Optional[int] = None,
    view_caching: bool = True,
    system_name: str = "dgap",
) -> LoopResult:
    """Ingest the stream in ``rounds`` slices; run the kernel sweep after each.

    Each round ingests ~1/rounds of the shuffled stream (10 rounds =
    10% per round).  PR and CC run once per round; the source kernels
    (BFS, BC) follow GAPBS's trial protocol and run once per sampled
    source — ``sources`` deterministic picks (the highest-degree
    vertices of the full stream, identical for both arms).  Every trial
    acquires its own ``analysis_view()``, exactly like the seed's
    per-run protocol — with caching on, all trials after the first in a
    round hit the whole-view cache and share derived arrays, and the
    per-round rebuild pays only for dirty sections.
    """
    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    system = build_system(system_name, nv, edges.shape[0])
    system.view_caching = view_caching
    deg = np.bincount(edges[:, 0], minlength=nv)
    source_list = np.argsort(-deg, kind="stable")[:sources]

    result = LoopResult(dataset, scale, rounds, tuple(kernels), view_caching)
    for rnd, part in enumerate(np.array_split(edges, rounds)):
        t0 = perf_counter()
        system.insert_edges(part, batch_size=batch_size)
        system.finalize()
        result.ingest_wall_s += perf_counter() - t0
        for kernel in kernels:
            fn = KERNELS[kernel]
            trials = source_list if kernel in SOURCE_KERNELS else [-1]
            for src in trials:
                t0 = perf_counter()
                view = system.analysis_view()
                view.reset_clock()
                out = fn(view, int(src)) if src >= 0 else fn(view)
                wall = perf_counter() - t0
                result.analysis_wall_s += wall
                result.records.append(KernelRecord(
                    round=rnd,
                    kernel=kernel,
                    source=int(src),
                    digest=hashlib.sha256(
                        np.ascontiguousarray(out).tobytes()
                    ).hexdigest(),
                    modeled_s=view.seconds(1),
                    wall_s=wall,
                ))
    if hasattr(system, "view_counters"):
        result.counters = dict(system.view_counters())
    else:  # non-DGAP systems: whole-view reuse stats only
        result.counters = {
            "view_builds": system.view_stats.builds,
            "whole_view_hits": system.view_stats.hits,
        }
    return result


def run_analysis_loop_pair(
    dataset: str = "orkut",
    scale: float = 0.25,
    rounds: int = 10,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    sources: int = 16,
    batch_size: Optional[int] = None,
    system_name: str = "dgap",
) -> LoopPair:
    """Run both arms and *assert* output and modeled-time identity."""
    cached = run_analysis_loop(
        dataset, scale, rounds, kernels, sources, batch_size,
        view_caching=True, system_name=system_name,
    )
    uncached = run_analysis_loop(
        dataset, scale, rounds, kernels, sources, batch_size,
        view_caching=False, system_name=system_name,
    )
    for rc, ru in zip(cached.records, uncached.records):
        where = f"round {rc.round} kernel {rc.kernel} source {rc.source}"
        if rc.digest != ru.digest:
            raise AssertionError(
                f"cached kernel output diverged from from-scratch at {where}: "
                f"{rc.digest[:12]} != {ru.digest[:12]}"
            )
        if rc.modeled_s != ru.modeled_s:
            raise AssertionError(
                f"cached modeled time diverged at {where}: "
                f"{rc.modeled_s!r} != {ru.modeled_s!r}"
            )
    return LoopPair(cached=cached, uncached=uncached)


# ----------------------------------------------------------------------
# counter-based incrementality proof (deterministic; no wall clocks)
# ----------------------------------------------------------------------

def verify_view_counters(
    dataset: str = "orkut",
    scale: float = 0.25,
    touch_vertex: int = 3,
    touch_edges: int = 5,
) -> List[Tuple[str, bool, str]]:
    """Deterministic checks that the cache is actually incremental.

    Returns ``(check, ok, detail)`` rows:

    1. an unchanged graph costs a whole-view hit — zero sections rebuilt;
    2. a small batch localized to one source vertex triggers an
       *incremental* build touching a strict subset of sections;
    3. the incremental view is element-identical to a from-scratch
       rebuild of the same snapshot.
    """
    from ..analysis.view import build_in_csr

    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    system = build_system("dgap", nv, edges.shape[0])
    system.insert_edges(edges)
    system.finalize()
    system.analysis_view()
    c0 = system.view_counters()

    checks: List[Tuple[str, bool, str]] = []

    # 1. unchanged graph: whole-view hit, no sections touched
    system.analysis_view()
    c1 = system.view_counters()
    checks.append((
        "unchanged graph -> whole-view hit",
        c1["whole_view_hits"] == c0["whole_view_hits"] + 1
        and c1["view_builds"] == c0["view_builds"],
        f"hits {c0['whole_view_hits']} -> {c1['whole_view_hits']}",
    ))
    checks.append((
        "unchanged graph -> zero sections rebuilt",
        c1["sections_rebuilt"] == c0["sections_rebuilt"],
        f"sections_rebuilt stayed {c1['sections_rebuilt']}",
    ))

    # 2. a localized batch: incremental build over a strict section subset
    dsts = (touch_vertex + 1 + np.arange(touch_edges)) % nv
    batch = np.stack(
        [np.full(touch_edges, touch_vertex, dtype=edges.dtype), dsts.astype(edges.dtype)],
        axis=1,
    )
    system.insert_edges(batch)
    system.finalize()
    view = system.analysis_view()
    c2 = system.view_counters()
    d_secs = c2["sections_rebuilt"] - c1["sections_rebuilt"]
    checks.append((
        "localized batch -> incremental build",
        c2["incremental_builds"] == c1["incremental_builds"] + 1
        and c2["full_rebuilds"] == c1["full_rebuilds"],
        f"incremental_builds {c1['incremental_builds']} -> {c2['incremental_builds']}",
    ))
    checks.append((
        "localized batch -> strict section subset rebuilt",
        0 < d_secs < c2["sections_total"],
        f"{d_secs} of {c2['sections_total']} sections",
    ))
    checks.append((
        "rows reused from previous materialization",
        c2["rows_reused"] - c1["rows_reused"]
        > c2["vertices_rebuilt"] - c1["vertices_rebuilt"],
        f"reused {c2['rows_reused'] - c1['rows_reused']}, "
        f"rebuilt {c2['vertices_rebuilt'] - c1['vertices_rebuilt']}",
    ))

    # 3. element-identity of the incremental view vs a scratch rebuild
    with system.graph.consistent_view() as snap:
        ref_indptr, ref_dsts = snap.to_csr()
    out_indptr, out_dsts = view.out_csr()
    in_indptr, in_srcs = view.in_csr()
    ref_in_indptr, ref_in_srcs = build_in_csr(
        np.asarray(ref_indptr), np.asarray(ref_dsts), nv
    )
    ok = (
        np.array_equal(out_indptr, np.asarray(ref_indptr))
        and np.array_equal(out_dsts, np.asarray(ref_dsts))
        and np.array_equal(in_indptr, ref_in_indptr)
        and np.array_equal(in_srcs, ref_in_srcs)
    )
    checks.append((
        "incremental view element-identical to scratch rebuild",
        ok,
        f"{int(out_indptr[-1])} edges compared",
    ))
    return checks


__all__ = [
    "DEFAULT_KERNELS",
    "KernelRecord",
    "LoopResult",
    "LoopPair",
    "run_analysis_loop",
    "run_analysis_loop_pair",
    "verify_view_counters",
]
