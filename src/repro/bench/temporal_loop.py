"""Windowed temporal loop: ingest→expire→analyze, incremental vs scratch.

The analysis-loop benchmark (``analysis_loop.py``) replays the paper's
insert-only cadence; temporal deployments also *retire* edges — every
step of a windowed stream ingests a burst, expires the burst that just
left the window down the deletion path, and occasionally pays a
tombstone-merge compaction sweep.  This driver replays that loop twice
on identical streams — same :class:`~repro.temporal.TemporalWindowGraph`
mutations, same expiry and compaction points — once with the PR 3
epoch-versioned view cache (whole-view reuse + dirty-section patching)
and once with the seed's from-scratch materialization per trial.

Deletions make the scratch arm strictly more expensive than in the
insert-only loop: every tombstoned run takes the snapshot's per-row
cancellation patch-up on *every* trial, while the cached arm pays it
once per step and then serves whole-view hits.  Compaction flips that
cost back down for both arms (the swept runs are tombstone-free), which
is exactly the trade the benchmark exists to expose.

Three invariants are *asserted*, not just reported:

* every kernel output is byte-identical across the two arms;
* every modeled kernel time is exactly equal (materialization is host
  work, never accounted on the simulated device);
* every step's out- and in-CSR are byte-identical across the arms —
  expiry and compaction must be invisible to analysis results.

The wall-clock ratio between the arms is the headline that
``benchmarks/test_temporal_loop.py`` pins against the seed baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms import KERNELS
from ..analysis.view import ID_DTYPE, INDPTR_DTYPE
from ..datasets import get_temporal_dataset
from ..temporal import TemporalWindowGraph
from .analysis_loop import KernelRecord
from .harness import SOURCE_KERNELS, build_system

#: default geometry for the pinned benchmark.
DEFAULT_DATASET = "orkut-stream"
DEFAULT_WINDOW = 6
DEFAULT_COMPACT_THRESHOLD = 0.25
DEFAULT_KERNELS: Tuple[str, ...] = ("pr", "cc", "bfs", "bc")


@dataclass
class StepRecord:
    """One step of one arm: mutation volume and the resulting views."""

    step: int
    added: int
    churned: int
    expired: int
    compacted: bool
    csr_digest: str  #: sha256 over the normalized out+in CSR bytes


@dataclass
class TemporalLoopResult:
    """One arm (cached or scratch) of the windowed loop."""

    dataset: str
    scale: float
    window: int
    compact_threshold: float
    kernels: Tuple[str, ...]
    view_caching: bool
    steps: List[StepRecord] = field(default_factory=list)
    records: List[KernelRecord] = field(default_factory=list)
    ingest_wall_s: float = 0.0
    analysis_wall_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def compactions(self) -> int:
        return sum(s.compacted for s in self.steps)


@dataclass
class TemporalLoopPair:
    """Cached vs scratch arms over the identical stream (verified)."""

    cached: TemporalLoopResult
    scratch: TemporalLoopResult

    @property
    def speedup(self) -> float:
        """Scratch / cached analysis wall time (the >= 2x criterion)."""
        return self.scratch.analysis_wall_s / max(
            self.cached.analysis_wall_s, 1e-12
        )


def _csr_digest(view) -> str:
    """Dtype-normalized digest so both arms hash identical bytes."""
    out_ip, out_ds = view.out_csr()
    in_ip, in_srcs = view.in_csr()
    h = hashlib.sha256()
    for arr, dt in (
        (out_ip, INDPTR_DTYPE), (out_ds, ID_DTYPE),
        (in_ip, INDPTR_DTYPE), (in_srcs, ID_DTYPE),
    ):
        h.update(np.ascontiguousarray(arr, dtype=dt).tobytes())
    return h.hexdigest()


def run_temporal_loop(
    dataset: str = DEFAULT_DATASET,
    scale: float = 1.0,
    window: int = DEFAULT_WINDOW,
    compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    sources: int = 8,
    batch_size: Optional[int] = None,
    max_steps: Optional[int] = None,
    view_caching: bool = True,
) -> TemporalLoopResult:
    """Replay the windowed stream; run the kernel sweep after every step.

    Each trial acquires its own ``analysis_view()`` exactly like the
    seed protocol — with caching on, trials after a step's first hit the
    whole-view cache and the per-step rebuild pays only for sections the
    step's adds, tombstones and sweeps dirtied.  BFS/BC sources are the
    ``sources`` highest-add-degree vertices of the full stream
    (identical for both arms); a source currently outside the window is
    a legal trivial trial.
    """
    spec = get_temporal_dataset(dataset)
    stream = spec.generate(scale)
    if max_steps is not None:
        stream = stream[:max_steps]
    nv, ne = spec.sizes(scale)
    system = build_system("dgap", nv, ne)
    system.view_caching = view_caching
    wg = TemporalWindowGraph(
        system.graph, window,
        compact_threshold=compact_threshold, batch_size=batch_size,
    )
    deg = np.zeros(nv, dtype=np.int64)
    for ts in stream:
        deg += np.bincount(ts.adds[:, 0], minlength=nv)
    source_list = np.argsort(-deg, kind="stable")[:sources]

    result = TemporalLoopResult(
        dataset, scale, window, compact_threshold, tuple(kernels), view_caching
    )
    for ts in stream:
        t0 = perf_counter()
        st = wg.advance(ts)
        result.ingest_wall_s += perf_counter() - t0
        view = None
        for kernel in kernels:
            fn = KERNELS[kernel]
            trials = source_list if kernel in SOURCE_KERNELS else [-1]
            for src in trials:
                t0 = perf_counter()
                view = system.analysis_view()
                view.reset_clock()
                out = fn(view, int(src)) if src >= 0 else fn(view)
                wall = perf_counter() - t0
                result.analysis_wall_s += wall
                result.records.append(KernelRecord(
                    round=st["step"],
                    kernel=kernel,
                    source=int(src),
                    digest=hashlib.sha256(
                        np.ascontiguousarray(out).tobytes()
                    ).hexdigest(),
                    modeled_s=view.seconds(1),
                    wall_s=wall,
                ))
        result.steps.append(StepRecord(
            step=st["step"],
            added=st["added"],
            churned=st["churn_deleted"],
            expired=st["expired"],
            compacted=st["compacted"],
            csr_digest=_csr_digest(view if view is not None
                                   else system.analysis_view()),
        ))
    result.counters = dict(wg.counters())
    result.counters["tombstone_pairs_compacted"] = (
        system.graph.tombstone_pairs_compacted
    )
    result.counters.update(system.view_counters())
    return result


def run_temporal_loop_pair(
    dataset: str = DEFAULT_DATASET,
    scale: float = 1.0,
    window: int = DEFAULT_WINDOW,
    compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    sources: int = 8,
    batch_size: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> TemporalLoopPair:
    """Run both arms; assert kernel, modeled-time and per-step CSR identity."""
    cached = run_temporal_loop(
        dataset, scale, window, compact_threshold, kernels, sources,
        batch_size, max_steps, view_caching=True,
    )
    scratch = run_temporal_loop(
        dataset, scale, window, compact_threshold, kernels, sources,
        batch_size, max_steps, view_caching=False,
    )
    for rc, ru in zip(cached.records, scratch.records):
        where = f"step {rc.round} kernel {rc.kernel} source {rc.source}"
        if rc.digest != ru.digest:
            raise AssertionError(
                f"cached kernel output diverged from scratch at {where}: "
                f"{rc.digest[:12]} != {ru.digest[:12]}"
            )
        if rc.modeled_s != ru.modeled_s:
            raise AssertionError(
                f"cached modeled time diverged at {where}: "
                f"{rc.modeled_s!r} != {ru.modeled_s!r}"
            )
    for sc, su in zip(cached.steps, scratch.steps):
        if sc.csr_digest != su.csr_digest:
            raise AssertionError(
                f"cached CSR diverged from scratch at step {sc.step}: "
                f"{sc.csr_digest[:12]} != {su.csr_digest[:12]}"
            )
        if (sc.added, sc.churned, sc.expired, sc.compacted) != (
            su.added, su.churned, su.expired, su.compacted
        ):
            raise AssertionError(
                f"arms applied different mutations at step {sc.step}"
            )
    return TemporalLoopPair(cached=cached, scratch=scratch)


__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "DEFAULT_DATASET",
    "DEFAULT_KERNELS",
    "DEFAULT_WINDOW",
    "StepRecord",
    "TemporalLoopPair",
    "TemporalLoopResult",
    "run_temporal_loop",
    "run_temporal_loop_pair",
]
