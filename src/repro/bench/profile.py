"""``python -m repro.bench profile`` — traced runs with per-phase attribution.

Each experiment builds the workload, installs a :class:`~repro.obs.Tracer`
on the system's device stats around the phase of interest, and returns
the tracer for the CLI to render (``profile_table``) and optionally
export (``--trace-out`` Chrome trace-event JSON).

``check_attribution`` is the acceptance gate used by ``--check`` and the
CI ``profile-smoke`` job: per-phase self modeled-ns must sum to the
run's total (float rounding only), and the integer counters must sum
exactly — no double-counting, no leaks.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from .. import DGAP, DGAPConfig
from ..baselines import SYSTEMS
from ..datasets import get_dataset
from ..obs import INT_COUNTER_FIELDS, Tracer, aggregate_phases, tracing
from .harness import pick_source, run_kernel

PROFILE_EXPERIMENTS = ("insert", "recovery", "analysis", "rebalance")

#: The merge/rebalance-heavy arm: large segments keep the per-section
#: lock/clear overhead small relative to the gather/plan/write passes the
#: bulk read layer vectorizes; each round ingests a stream slice and then
#: forces a whole-array rebalance.
REBALANCE_ARM_SEGMENT_SLOTS = 4096
REBALANCE_ARM_ROUNDS = 12


def profile_insert(
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    device_ops: bool = False,
) -> Tracer:
    """Trace a full ingest of the dataset stream into a fresh DGAP."""
    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    tracer = Tracer(g.pool.stats, device_ops=device_ops)
    with tracing(tracer):
        g.insert_edges(edges, batch_size=batch_size)
    return tracer


def profile_recovery(
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    device_ops: bool = False,
) -> Tracer:
    """Ingest untraced, crash the pool, then trace the recovery path."""
    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    g.insert_edges(edges, batch_size=batch_size)
    g.pool.crash()
    tracer = Tracer(g.pool.stats, device_ops=device_ops)
    with tracing(tracer):
        DGAP.open(g.pool, g.config)
    return tracer


def build_rebalance_arm(
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    scalar_readpath: bool = False,
    rounds: int = REBALANCE_ARM_ROUNDS,
):
    """Run the merge/rebalance-heavy arm; return ``(graph, rebalance_wall_s)``.

    The stream is split into ``rounds`` slices; after each slice a full
    whole-array rebalance is forced.  Only the rebalance calls are
    timed — that is the path the bulk pmem read layer vectorizes (the
    ingest slices between them exercise the ordinary merge triggers).
    """
    from time import perf_counter

    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    g = DGAP(
        DGAPConfig(
            init_vertices=nv,
            init_edges=edges.shape[0],
            segment_slots=REBALANCE_ARM_SEGMENT_SLOTS,
            scalar_readpath=scalar_readpath,
        )
    )
    per = max(1, edges.shape[0] // rounds)
    wall = 0.0
    for r in range(rounds):
        g.insert_edges(edges[r * per : (r + 1) * per], batch_size=batch_size)
        t0 = perf_counter()
        g.rebalancer.rebalance_window(0, g.ea.n_sections, g.ea.tree.height)
        wall += perf_counter() - t0
    return g, wall


def profile_rebalance(
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    device_ops: bool = False,
) -> Tracer:
    """Trace the merge/rebalance-heavy arm (forced whole-array rebalances)."""
    from time import perf_counter

    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    g = DGAP(
        DGAPConfig(
            init_vertices=nv,
            init_edges=edges.shape[0],
            segment_slots=REBALANCE_ARM_SEGMENT_SLOTS,
        )
    )
    tracer = Tracer(g.pool.stats, device_ops=device_ops)
    per = max(1, edges.shape[0] // REBALANCE_ARM_ROUNDS)
    with tracing(tracer):
        for r in range(REBALANCE_ARM_ROUNDS):
            g.insert_edges(edges[r * per : (r + 1) * per], batch_size=batch_size)
            g.rebalancer.rebalance_window(0, g.ea.n_sections, g.ea.tree.height)
    return tracer


def profile_analysis(
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    device_ops: bool = False,
) -> Tracer:
    """Ingest untraced, then trace view materialization + all four kernels.

    Kernels charge the analysis clock rather than device stats, so their
    spans mostly carry wall time and ``analysis_*_ns`` attributes; the
    device-side cost shows up in the ``view_materialize``/``to_csr``
    spans.
    """
    spec = get_dataset(dataset)
    edges = spec.generate(scale)
    nv, _ = spec.sizes(scale)
    system = SYSTEMS["dgap"](nv, edges.shape[0])
    system.insert_batch(edges)
    src = pick_source(dataset, scale)
    tracer = Tracer(system.graph.pool.stats, device_ops=device_ops)
    with tracing(tracer):
        view = system.analysis_view()
        for kernel in ("pr", "bfs", "cc", "bc"):
            run_kernel(view, kernel, source=src)
    return tracer


_RUNNERS = {
    "insert": profile_insert,
    "recovery": profile_recovery,
    "analysis": profile_analysis,
    "rebalance": profile_rebalance,
}


def run_profile(
    experiment: str,
    dataset: str,
    scale: float,
    batch_size: Optional[int],
    *,
    device_ops: bool = False,
) -> Tracer:
    try:
        runner = _RUNNERS[experiment]
    except KeyError:
        raise SystemExit(
            f"unknown profile experiment {experiment!r}; "
            f"have {sorted(_RUNNERS)}"
        ) from None
    return runner(dataset, scale, batch_size, device_ops=device_ops)


# -- acceptance checks (CI profile-smoke + --check) ------------------------

def check_attribution(tracer: Tracer) -> List[str]:
    """Return human-readable failures; empty list = attribution is exact."""
    failures: List[str] = []
    total = tracer.total_delta()
    if total is None:
        return ["tracer has no stats; nothing to check"]
    rows, untraced = aggregate_phases(tracer)
    if not rows:
        failures.append("no spans were recorded")
        return failures

    modeled = sum(r.modeled_ns for r in rows) + untraced.modeled_ns
    tol = max(1e-6 * abs(total.modeled_ns), 1e-3)
    if abs(modeled - total.modeled_ns) > tol:
        failures.append(
            f"modeled-ns attribution leak: phases sum to {modeled}, "
            f"device total is {total.modeled_ns}"
        )
    for field in INT_COUNTER_FIELDS:
        got = sum(r.counters[field] for r in rows) + untraced.counters[field]
        want = getattr(total, field)
        if got != want:
            failures.append(
                f"counter {field!r} attribution leak: phases sum to {got}, "
                f"device total is {want}"
            )
    if untraced.modeled_ns < -tol:
        failures.append(
            f"(untraced) modeled ns is negative ({untraced.modeled_ns}): "
            "root spans overlap or double-count"
        )
    return failures


def check_chrome_trace(path: str) -> List[str]:
    """Validate the written file is loadable Chrome trace-event JSON."""
    failures: List[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as e:
        return [f"trace file {path!r} is not readable JSON: {e}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"trace file {path!r} has no traceEvents array"]
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                failures.append(f"event {i} missing {key!r}")
                break
        if ev.get("ph") == "X" and (ev.get("dur", -1) < 0 or ev.get("ts", -1) < 0):
            failures.append(f"event {i} ({ev.get('name')}) has bad ts/dur")
    return failures


__all__ = [
    "PROFILE_EXPERIMENTS",
    "run_profile",
    "profile_insert",
    "profile_recovery",
    "profile_analysis",
    "profile_rebalance",
    "build_rebalance_arm",
    "check_attribution",
    "check_chrome_trace",
]
