"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

A thin alternative to the pytest benchmarks for interactive use::

    python -m repro.bench insert --dataset orkut --scale 0.5
    python -m repro.bench analysis --dataset livejournal --kernel pr
    python -m repro.bench ablation --scale 0.25
    python -m repro.bench recovery --dataset orkut

Each subcommand prints the same tables the benchmark suite emits.
"""

from __future__ import annotations

import argparse
import sys

from .. import DGAP, DGAPConfig
from ..datasets import DATASETS, SMALL_DATASETS, get_dataset
from .harness import (
    DEFAULT_BATCH_SIZE,
    get_built_system,
    get_static_csr,
    pick_source,
    run_kernel,
)
from .reporting import (
    analysis_loop_table,
    crash_sweep_table,
    format_table,
    ingest_phase_table,
    profile_table,
    temporal_loop_table,
)

SYSTEM_ORDER = ("dgap", "bal", "llama", "graphone", "xpgraph")


def _batch_size(args) -> int | None:
    """CLI batch size; 0 or negative means 'one batch for everything'."""
    bs = getattr(args, "batch_size", DEFAULT_BATCH_SIZE)
    return None if bs is not None and bs <= 0 else bs


def cmd_insert(args) -> None:
    bs = _batch_size(args)
    rows, results = [], []
    for name in SYSTEM_ORDER:
        _, ins = get_built_system(name, args.dataset, scale=args.scale, batch_size=bs)
        rows.append((name, ins.meps(1), ins.meps(8), ins.meps(16), ins.write_amplification))
        results.append(ins)
    print(format_table(
        f"insert throughput — {args.dataset} (scale {args.scale}, batch {bs or 'all'})",
        ["system", "MEPS T1", "MEPS T8", "MEPS T16", "write amp"],
        rows,
    ))
    print(ingest_phase_table(results))


def cmd_analysis(args) -> None:
    src = pick_source(args.dataset, args.scale)
    csr_view = get_static_csr(args.dataset, args.scale).analysis_view()
    t_csr = run_kernel(csr_view, args.kernel, source=src)[1]
    rows = [("csr", t_csr * 1e3, 1.0)]
    for name in SYSTEM_ORDER:
        system, _ = get_built_system(name, args.dataset, scale=args.scale)
        t = run_kernel(system.analysis_view(), args.kernel, source=src)[1]
        rows.append((name, t * 1e3, t / t_csr))
    print(format_table(
        f"{args.kernel.upper()} — {args.dataset} (scale {args.scale}, modeled, 1 thread)",
        ["system", "time (ms)", "vs CSR"],
        rows,
    ))


def cmd_analysis_loop(args) -> None:
    from .analysis_loop import DEFAULT_KERNELS, run_analysis_loop_pair, verify_view_counters

    kernels = tuple(args.kernels.split(",")) if args.kernels else DEFAULT_KERNELS
    pair = run_analysis_loop_pair(
        args.dataset,
        scale=args.scale,
        rounds=args.rounds,
        kernels=kernels,
        sources=args.sources,
        batch_size=_batch_size(args),
    )
    print(analysis_loop_table(pair))
    print(format_table(
        "loop identity (asserted) & speedup",
        ["metric", "value"],
        [
            ("kernel outputs identical (sha256)", "yes"),
            ("modeled seconds identical", "yes"),
            ("analysis wall speedup (cached)", f"{pair.speedup:.2f}x"),
        ],
    ))
    if args.check_counters:
        checks = verify_view_counters(args.dataset, scale=args.scale)
        print(format_table(
            "incrementality counter checks",
            ["check", "ok?", "detail"],
            [(name, "yes" if ok else "NO", detail) for name, ok, detail in checks],
        ))
        if not all(ok for _, ok, _ in checks):
            raise SystemExit("counter checks failed")


def cmd_temporal(args) -> None:
    from .temporal_loop import DEFAULT_KERNELS, run_temporal_loop_pair

    kernels = tuple(args.kernels.split(",")) if args.kernels else DEFAULT_KERNELS
    pair = run_temporal_loop_pair(
        args.dataset,
        scale=args.scale,
        window=args.window,
        compact_threshold=args.compact_threshold,
        kernels=kernels,
        sources=args.sources,
        batch_size=_batch_size(args),
        max_steps=args.max_steps or None,
    )
    print(temporal_loop_table(pair))
    c = pair.cached
    print(format_table(
        "loop identity (asserted) & speedup",
        ["metric", "value"],
        [
            ("kernel outputs identical (sha256)", "yes"),
            ("modeled seconds identical", "yes"),
            ("per-step CSR byte-identical", "yes"),
            ("compaction sweeps", str(c.compactions)),
            ("tombstone pairs compacted",
             str(c.counters["tombstone_pairs_compacted"])),
            ("analysis wall speedup (cached)", f"{pair.speedup:.2f}x"),
        ],
    ))
    if args.min_speedup > 0 and pair.speedup < args.min_speedup:
        raise SystemExit(
            f"temporal loop speedup {pair.speedup:.2f}x "
            f"< required {args.min_speedup:g}x"
        )


def cmd_ablation(args) -> None:
    variants = (
        ("dgap", {}),
        ("no_el", {"use_edge_log": False}),
        ("no_el_ul", {"use_edge_log": False, "use_undo_log": False}),
        ("no_el_ul_dp", {"use_edge_log": False, "use_undo_log": False, "dram_placement": False}),
    )
    rows = []
    for ds in SMALL_DATASETS:
        spec = get_dataset(ds)
        edges = spec.generate(args.scale)
        nv, _ = spec.sizes(args.scale)
        for name, kw in variants:
            g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0], **kw))
            before = g.pool.stats.snapshot()
            g.insert_edges(edges, batch_size=_batch_size(args))
            d = g.pool.stats.delta_since(before)
            rows.append((ds, name, d.modeled_ns * 1e-9))
    print(format_table(
        "Table 5 ablation (modeled seconds)",
        ["dataset", "variant", "insert time (s)"],
        rows,
        floatfmt="{:.4f}",
    ))


def cmd_recovery(args) -> None:
    spec = get_dataset(args.dataset)
    edges = spec.generate(args.scale)
    nv, _ = spec.sizes(args.scale)
    g = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    g.insert_edges(edges, batch_size=_batch_size(args))
    g.shutdown()
    before = g.pool.stats.snapshot()
    g2 = DGAP.open(g.pool, g.config)
    normal = g.pool.stats.delta_since(before).modeled_ns * 1e-6
    g2.pool.crash()
    before = g2.pool.stats.snapshot()
    DGAP.open(g2.pool, g2.config)
    crash = g2.pool.stats.delta_since(before).modeled_ns * 1e-6
    print(format_table(
        f"recovery — {args.dataset} ({edges.shape[0]} edges)",
        ["path", "modeled ms"],
        [("normal restart", normal), ("crash recovery", crash)],
        floatfmt="{:.3f}",
    ))


def cmd_profile(args) -> None:
    from ..obs import write_chrome_trace
    from .profile import check_attribution, check_chrome_trace, run_profile

    tracer = run_profile(
        args.experiment,
        args.dataset,
        args.scale,
        _batch_size(args),
        device_ops=args.device_ops,
    )
    print(profile_table(
        tracer,
        title=(
            f"profile {args.experiment} — {args.dataset} "
            f"(scale {args.scale:g}): per-phase self attribution"
        ),
    ))
    print(f"spans recorded: {tracer.span_count()}")
    failures = []
    if args.check:
        failures += check_attribution(tracer)
    if args.trace_out:
        n = write_chrome_trace(tracer, args.trace_out)
        print(f"wrote {n} Chrome trace events to {args.trace_out}")
        if args.check:
            failures += check_chrome_trace(args.trace_out)
    if failures:
        raise SystemExit("profile checks failed:\n" + "\n".join(
            f"  {f}" for f in failures
        ))
    if args.check:
        print("attribution checks passed: per-phase modeled ns and counters "
              "sum exactly to the device totals")


def cmd_shard(args) -> None:
    """Shard-scaling twin: single pool vs N pools on the same stream."""
    from ..analysis.viewcache import DGAPViewCache
    from ..sharding import ShardedDGAP

    spec = get_dataset(args.dataset)
    edges = spec.generate(args.scale)
    nv, _ = spec.sizes(args.scale)
    bs = _batch_size(args)
    n = args.shards

    def build(g):
        before = g.pool.stats.snapshot()
        g.insert_edges(edges, batch_size=bs)
        return g.pool.stats.delta_since(before).modeled_ns

    def meps(ns):
        return edges.shape[0] / ns * 1e3 if ns else 0.0

    single = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    ns1 = build(single)
    sharded = ShardedDGAP(n, DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
    nsn = build(sharded)

    with single.consistent_view() as snap:
        ref_out, ref_in = DGAPViewCache(single).materialize(snap)
    mrg_out, mrg_in = sharded.global_csr()
    identical = all(
        a.tobytes() == b.tobytes()
        for a, b in zip(ref_out + ref_in, mrg_out + mrg_in)
    )
    shares = [sh.num_edges / max(sharded.num_edges, 1) for sh in sharded.shards]
    rows = [
        ("single-pool modeled MEPS", meps(ns1)),
        (f"{n}-shard modeled MEPS", meps(nsn)),
        ("speedup (modeled clock)", ns1 / nsn if nsn else 0.0),
        ("merged view byte-identical", "yes" if identical else "NO"),
        ("max shard share", max(shares) if shares else 0.0),
        ("shard shares", " ".join(f"{s:.2f}" for s in shares)),
    ]
    print(format_table(
        f"shard scaling — {args.dataset} (scale {args.scale:g}, "
        f"{edges.shape[0]} edges, batch {bs or 'all'}, {n} shards)",
        ["metric", "value"],
        rows,
    ))
    if not identical:
        raise SystemExit("merged sharded view diverged from the unsharded build")


def cmd_serve(args) -> None:
    """Online serving: Zipfian point queries under a concurrent write stream."""
    from ..serve import ServeWorkloadConfig, generate_workload, run_serve_workload
    from .reporting import serve_latency_table

    spec = get_dataset(args.dataset)
    edges = spec.generate(args.scale)
    nv, _ = spec.sizes(args.scale)
    cfg = ServeWorkloadConfig(
        n_ops=args.ops,
        read_fraction=args.read_fraction,
        zipf_theta=args.theta,
        n_clients=args.clients,
        mode=args.mode,
        seed=args.seed,
    )
    if args.shards > 1:
        from ..sharding import ShardedDGAP

        graph = ShardedDGAP(
            args.shards, DGAPConfig(init_vertices=nv, init_edges=edges.shape[0])
        )
        flavor = f"{args.shards} shards"
    else:
        graph = DGAP(DGAPConfig(init_vertices=nv, init_edges=edges.shape[0]))
        flavor = "unsharded"
    graph.insert_edges(edges, batch_size=_batch_size(args))
    ops = generate_workload(nv, cfg)
    report = run_serve_workload(graph, ops, cfg, twin_check=args.twin)
    print(serve_latency_table(
        report,
        f"serve latency — {args.dataset} (scale {args.scale:g}, {flavor}, "
        f"{cfg.mode} loop, theta {cfg.zipf_theta:g})",
    ))
    if args.twin and not report.identity_ok:
        raise SystemExit(
            f"served reads diverged from fresh-snapshot reads "
            f"({report.mismatches} mismatches)"
        )


_SWEEP_POLICIES = ("default", "torn", "reorder", "adversarial")


def cmd_crash_sweep(args) -> None:
    from ..pmem.faults import (
        ADVERSARIAL,
        DEFAULT_POLICY,
        PERSIST_REORDER,
        TORN_STORES,
        FaultPolicy,
    )
    from ..testing import (
        SweepConfig,
        crash_sweep,
        make_batched_insert_workload,
        make_insert_workload,
        make_windowed_workload,
    )

    base = {
        "default": DEFAULT_POLICY,
        "torn": TORN_STORES,
        "reorder": PERSIST_REORDER,
        "adversarial": ADVERSARIAL,
    }[args.policy]
    policy = FaultPolicy(
        torn_stores=base.torn_stores,
        persist_reorder=base.persist_reorder,
        poison_on_crash=args.poison,
        transient_read_rate=args.transient_rate,
        seed=args.seed,
    )
    spec = get_dataset(args.dataset)
    edges = spec.generate(args.scale)[: args.edges]
    nv = int(edges.max()) + 1 if edges.size else 1
    nv = max(nv, args.shards)
    cfg = DGAPConfig(init_vertices=nv, init_edges=max(len(edges), 64))

    if args.shards > 1:
        from ..sharding import ShardedDGAP

        def make_graph(injector, faults):
            return ShardedDGAP(args.shards, cfg, injector=injector, faults=faults)
    else:
        def make_graph(injector, faults):
            return DGAP(cfg, injector=injector, faults=faults)

    if args.expire_window >= 0:
        workload = make_windowed_workload(
            edges,
            window=args.expire_window,
            step=args.window_step,
            compact_every=args.compact_every,
        )
    elif args.batch_size > 0:
        workload = make_batched_insert_workload(edges, batch_size=args.batch_size)
    else:
        workload = make_insert_workload(edges)

    report = crash_sweep(
        make_graph,
        workload,
        SweepConfig(
            faults=policy,
            exhaustive_threshold=args.exhaustive_threshold,
            samples=args.points,
            seed=args.seed,
        ),
    )
    print(crash_sweep_table(
        report,
        title=(
            f"crash sweep — {args.dataset} ({len(edges)} edges, "
            f"{args.shards} shard{'s' if args.shards != 1 else ''}, "
            f"policy {args.policy}, seed {args.seed})"
        ),
    ))


def cmd_soak(args) -> None:
    from ..pmem.faults import FaultPolicy
    from ..testing import SoakConfig, make_insert_workload, soak_sweep
    from .reporting import soak_table

    policy = FaultPolicy(
        read_poison_rate=args.poison_rate,
        transient_read_rate=args.transient_rate,
        seed=args.seed,
    )
    spec = get_dataset(args.dataset)
    edges = spec.generate(args.scale)[: args.edges]
    nv = int(edges.max()) + 1 if edges.size else 1
    # A tight initial capacity keeps the PMA under pressure so the run
    # exercises log appends, merges, and rebalance windows — the demand
    # bulk-read paths where transient faults surface.
    cfg = DGAPConfig(init_vertices=nv, init_edges=max(len(edges) // 2, 256))

    def make_graph(injector, faults):
        return DGAP(cfg, injector=injector, faults=faults)

    report = soak_sweep(
        make_graph,
        make_insert_workload(edges),
        SoakConfig(
            faults=policy,
            rounds=args.rounds,
            scrub_every=args.scrub_every,
            patrol_bytes=args.patrol_kib * 1024,
        ),
    )
    print(soak_table(
        report,
        title=(
            f"soak sweep — {args.dataset} ({len(edges)} edges, "
            f"{args.rounds} rounds, seed {args.seed})"
        ),
    ))
    if report.fault_points < args.min_fault_points:
        raise SystemExit(
            f"soak survived only {report.fault_points} fault points "
            f"(< {args.min_fault_points}); raise rates or edges"
        )


def cmd_race_check(args) -> None:
    from ..testing import RaceCheckConfig, race_check
    from ..testing.racecheck import SCENARIOS, dry_run
    from .reporting import race_check_dry_table, race_check_table

    names = args.scenarios.split(",") if args.scenarios else None
    if names:
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            raise SystemExit(f"unknown scenarios {unknown}; have {sorted(SCENARIOS)}")
    if args.dry_run:
        counts = {}
        for name in names or list(SCENARIOS):
            counts.update(dry_run(name))
        print(race_check_dry_table(counts))
        return
    report = race_check(RaceCheckConfig(
        max_schedules=args.schedules, seed=args.seed, scenarios=names,
    ))
    print(race_check_table(
        report,
        title=f"race check — lock-discipline oracle (seed {args.seed})",
    ))
    if not report.ok:
        raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    def add_batch_size(p):
        p.add_argument(
            "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
            help="ingest sub-batch size (1 = per-edge path, <=0 = one batch)",
        )

    p = sub.add_parser("insert", help="Fig. 6 / Table 3 style insert throughput")
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=1.0)
    add_batch_size(p)
    p.set_defaults(fn=cmd_insert)

    p = sub.add_parser("analysis", help="Fig. 7/8 style kernel comparison")
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--kernel", choices=("pr", "bfs", "bc", "cc"), default="pr")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=cmd_analysis)

    p = sub.add_parser(
        "analysis-loop",
        help="ingest→analyze loop: incremental view cache vs from-scratch",
    )
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--kernels", default="",
                   help="comma list from pr,cc,bfs,bc (default: all four)")
    p.add_argument("--sources", type=int, default=16,
                   help="GAPBS-style trial count for the source kernels (bfs, bc)")
    p.add_argument("--batch-size", type=int, default=0,
                   help="ingest sub-batch size (<=0 = one batch per round)")
    p.add_argument("--check-counters", action="store_true",
                   help="also run the deterministic incrementality counter checks")
    p.set_defaults(fn=cmd_analysis_loop)

    p = sub.add_parser(
        "temporal",
        help="windowed stream: ingest→expire→analyze loop, cached vs scratch",
    )
    from ..datasets import TEMPORAL_DATASETS
    from .temporal_loop import (
        DEFAULT_COMPACT_THRESHOLD,
        DEFAULT_DATASET,
        DEFAULT_WINDOW,
    )

    p.add_argument("--dataset", choices=sorted(TEMPORAL_DATASETS),
                   default=DEFAULT_DATASET)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                   help="sliding window in steps (0 = expire each step "
                        "immediately)")
    p.add_argument("--compact-threshold", type=float,
                   default=DEFAULT_COMPACT_THRESHOLD,
                   help="tombstone density that triggers a merge sweep")
    p.add_argument("--kernels", default="",
                   help="comma list from pr,cc,bfs,bc (default: all four)")
    p.add_argument("--sources", type=int, default=8,
                   help="GAPBS-style trial count for the source kernels (bfs, bc)")
    p.add_argument("--max-steps", type=int, default=0,
                   help="replay only this many steps (0 = the whole stream)")
    p.add_argument("--batch-size", type=int, default=0,
                   help="ingest sub-batch size (<=0 = one batch per phase)")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="exit nonzero unless the cached arm wins by this factor")
    p.set_defaults(fn=cmd_temporal)

    p = sub.add_parser("ablation", help="Table 5 component ablation")
    p.add_argument("--scale", type=float, default=0.5)
    add_batch_size(p)
    p.set_defaults(fn=cmd_ablation)

    p = sub.add_parser("recovery", help="normal restart vs crash recovery")
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=0.5)
    add_batch_size(p)
    p.set_defaults(fn=cmd_recovery)

    p = sub.add_parser(
        "profile",
        help="traced run: per-phase modeled-time attribution (+ Chrome trace)",
    )
    from .profile import PROFILE_EXPERIMENTS

    p.add_argument("experiment", choices=PROFILE_EXPERIMENTS)
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=0.1)
    add_batch_size(p)
    p.add_argument("--trace-out", default="",
                   help="write Chrome trace-event JSON here (open in Perfetto)")
    p.add_argument("--device-ops", action="store_true",
                   help="also record every device primitive as a trace event")
    p.add_argument("--check", action="store_true",
                   help="verify attribution exactness and trace validity; "
                        "exit nonzero on failure")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "shard",
        help="sharded multi-pool ingest vs a single pool (modeled speedup "
             "+ merged-view identity)",
    )
    p.add_argument("--dataset", choices=sorted(DATASETS), default="citpatents")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--shards", type=int, default=4)
    add_batch_size(p)
    p.set_defaults(fn=cmd_shard)

    p = sub.add_parser(
        "crash-sweep",
        help="crash-consistency sweep with the recovery oracle (robustness)",
    )
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--edges", type=int, default=120,
                   help="cap the workload to this many edges (scalar replay per point)")
    p.add_argument("--shards", type=int, default=1,
                   help="sweep a sharded multi-pool graph with this many shards")
    p.add_argument("--batch-size", type=int, default=0,
                   help="replay via routed EdgeBatch dispatches of this size "
                        "(<=0 = per-edge ops); exercises mid-dispatch crashes")
    p.add_argument("--expire-window", type=int, default=-1,
                   help="sweep a windowed stream instead: expire edges this "
                        "many steps after insertion and compact periodically "
                        "(>=0 enables; overrides --batch-size)")
    p.add_argument("--window-step", type=int, default=6,
                   help="edges per temporal step for --expire-window")
    p.add_argument("--compact-every", type=int, default=3,
                   help="compaction cadence in steps for --expire-window")
    p.add_argument("--policy", choices=_SWEEP_POLICIES, default="default")
    p.add_argument("--poison", type=float, default=0.0,
                   help="probability a lost line is poisoned at crash (media faults)")
    p.add_argument("--transient-rate", type=float, default=0.0,
                   help="per-line transient read-fault rate during recovery "
                        "(runtime fault model; retried with modeled backoff)")
    p.add_argument("--points", type=int, default=200,
                   help="sampled crash points when above the exhaustive threshold")
    p.add_argument("--exhaustive-threshold", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_crash_sweep)

    p = sub.add_parser(
        "soak",
        help="runtime-fault soak: ingest→scrub→analyze rounds with the "
             "no-silent-corruption oracle (robustness)",
    )
    p.add_argument("--dataset", choices=sorted(DATASETS), default="orkut")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--edges", type=int, default=8000,
                   help="cap the workload to this many edges")
    p.add_argument("--rounds", type=int, default=5)
    p.add_argument("--scrub-every", type=int, default=25,
                   help="patrol-scrub step every this-many inserts")
    p.add_argument("--patrol-kib", type=int, default=64,
                   help="patrol-scrub window size (KiB)")
    p.add_argument("--poison-rate", type=float, default=1e-3,
                   help="per-line spontaneous-decay rate on reads/scrub")
    p.add_argument("--transient-rate", type=float, default=1e-2,
                   help="per-line transient read-fault rate (retried)")
    p.add_argument("--min-fault-points", type=int, default=200,
                   help="fail unless at least this many fault points fired")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser(
        "serve",
        help="online point queries under concurrent writes (snapshot-isolated views)",
    )
    p.add_argument("--dataset", default="orkut", choices=sorted(DATASETS))
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--ops", type=int, default=1500)
    p.add_argument("--read-fraction", type=float, default=0.95)
    p.add_argument("--theta", type=float, default=0.99)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--mode", default="closed", choices=("closed", "open"))
    p.add_argument("--shards", type=int, default=1,
                   help="shard count (1 = unsharded DGAP)")
    p.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--twin", action="store_true",
                   help="also run every read on a fresh snapshot and require "
                        "byte-identical results")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "race-check",
        help="deterministic-interleaving sweep with the lock-discipline oracle",
    )
    p.add_argument("--scenarios", default="",
                   help="comma list of scenario names (default: all)")
    p.add_argument("--schedules", type=int, default=120,
                   help="schedule budget per scenario (exhaustive when it fits)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dry-run", action="store_true",
                   help="one default schedule per scenario: event counts only")
    p.set_defaults(fn=cmd_race_check)

    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
