"""Benchmark harness: regenerates every table and figure of the paper."""

from .harness import (
    DEFAULT_BATCH_SIZE,
    build_system,
    clear_cache,
    get_built_system,
    get_static_csr,
    ingest,
    pick_source,
    run_kernel,
)
from .reporting import (
    analysis_loop_table,
    emit,
    format_table,
    ingest_phase_table,
    paper_vs_measured,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "build_system",
    "ingest",
    "run_kernel",
    "get_built_system",
    "get_static_csr",
    "clear_cache",
    "pick_source",
    "emit",
    "format_table",
    "ingest_phase_table",
    "analysis_loop_table",
    "paper_vs_measured",
]
